// Capital 3D recursive Cholesky: numerics at small scale (real mode) and
// schedule/BSP behaviour at larger scale (model mode).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "capital/cholesky3d.hpp"
#include "core/profiler.hpp"
#include "la/lapack.hpp"
#include "sim/api.hpp"

namespace sim = critter::sim;
namespace cap = critter::capital;
using critter::Config;
using critter::ExecMode;
using critter::Report;
using critter::Store;

namespace la = critter::la;

namespace {

Report run_capital(int c, int n, cap::CholeskyConfig ccfg, bool real,
                   double* residual_out = nullptr,
                   double* inv_residual_out = nullptr) {
  const int p = c * c * c;
  Config cfg;
  cfg.mode = real ? ExecMode::Real : ExecMode::Model;
  cfg.selective = false;
  Store store(p, cfg);
  sim::Machine m = sim::Machine::knl_like();
  sim::Engine eng(p, m);
  Report rep;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    cap::Grid3D g = cap::Grid3D::build(c);
    cap::CyclicMatrix a(n, g, real);
    la::Matrix full;
    if (real) {
      full = critter::la::random_spd(n, 99);
      a.scatter_from_full(full);
    }
    cap::Cholesky3D chol(g, n, ccfg, real);
    chol.factor(a);
    if (real && residual_out != nullptr) {
      la::Matrix lfull = chol.L().gather_full();
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < j; ++i) lfull(i, j) = 0.0;
      const double res = critter::la::cholesky_residual(full, lfull);
      la::Matrix ifull = chol.Linv().gather_full();
      // L * Linv should be the identity (lower triangles).
      la::Matrix prod(n, n);
      critter::la::gemm(critter::la::Trans::N, critter::la::Trans::N, n, n, n,
                        1.0, lfull.data(), n, ifull.data(), n, 0.0,
                        prod.data(), n);
      double ierr = 0.0;
      for (int j = 0; j < n; ++j)
        for (int i = j; i < n; ++i) {
          const double v = prod(i, j) - (i == j ? 1.0 : 0.0);
          ierr += v * v;
        }
      if (ctx.rank == 0) {
        *residual_out = res;
        *inv_residual_out = std::sqrt(ierr);
      }
    }
    Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

}  // namespace

class CapitalReal
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(CapitalReal, FactorsCorrectly) {
  auto [c, n, b, strategy] = GetParam();
  double res = 1e300, ires = 1e300;
  cap::CholeskyConfig ccfg{b, strategy};
  (void)run_capital(c, n, ccfg, /*real=*/true, &res, &ires);
  EXPECT_LT(res, 1e-11) << "Cholesky residual too large";
  EXPECT_LT(ires, 1e-9) << "L * Linv far from identity";
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CapitalReal,
    ::testing::Values(std::tuple{1, 16, 4, 1},   // single rank, deep recursion
                      std::tuple{1, 16, 16, 2},  // single rank, base only
                      std::tuple{2, 16, 4, 1},   // 8 ranks, strategy 1
                      std::tuple{2, 16, 4, 2},   // 8 ranks, strategy 2
                      std::tuple{2, 16, 4, 3},   // 8 ranks, strategy 3
                      std::tuple{2, 32, 8, 1},   // deeper recursion
                      std::tuple{2, 32, 8, 2},
                      std::tuple{2, 64, 8, 3},
                      std::tuple{4, 32, 8, 2},   // 64 ranks
                      std::tuple{4, 64, 16, 1},
                      std::tuple{4, 64, 16, 3}));

TEST(CapitalModel, RunsAtScaleWithoutData) {
  cap::CholeskyConfig ccfg{128, 2};
  Report r = run_capital(/*c=*/4, /*n=*/2048, ccfg, /*real=*/false);
  EXPECT_GT(r.critical.exec_time, 0.0);
  EXPECT_GT(r.critical.comp_cost, 0.0);
  EXPECT_GT(r.critical.comm_cost, 0.0);
  // n^3/3 flops total; critical path holds roughly 1/p of it plus base
  // cases; sanity-bound it.
  const double total_flops = 2048.0 * 2048.0 * 2048.0 / 3.0;
  EXPECT_LT(r.critical.comp_cost, total_flops);
  EXPECT_GT(r.critical.comp_cost, total_flops / 64.0 * 0.5);
}

TEST(CapitalModel, BlockSizeTradesSyncForComm) {
  // Paper Fig. 3a/3e: small blocks -> more supersteps (alpha term), less
  // per-step bandwidth and compute; big blocks -> the reverse.
  cap::CholeskyConfig small{32, 2}, big{256, 2};
  Report rs = run_capital(2, 512, small, false);
  Report rb = run_capital(2, 512, big, false);
  EXPECT_GT(rs.critical.sync_cost, rb.critical.sync_cost);
  EXPECT_GT(rb.critical.comp_cost, 0.9 * rs.critical.comp_cost);
}

TEST(CapitalModel, BaseStrategiesDifferInCommProfile) {
  // Strategy 2 (redundant allgather in every layer) performs no depth
  // broadcast for base cases; strategy 1 gathers + scatters + broadcasts.
  cap::CholeskyConfig s1{64, 1}, s2{64, 2};
  Report r1 = run_capital(2, 512, s1, false);
  Report r2 = run_capital(2, 512, s2, false);
  EXPECT_NE(r1.critical.sync_cost, r2.critical.sync_cost);
}

TEST(CapitalModel, KernelProfileHasExpectedClasses) {
  const int c = 2, p = 8;
  Config cfg;
  cfg.mode = ExecMode::Model;
  cfg.selective = false;
  Store store(p, cfg);
  sim::Engine eng(p, sim::Machine::knl_like());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    cap::Grid3D g = cap::Grid3D::build(c);
    cap::CyclicMatrix a(256, g, false);
    cap::Cholesky3D chol(g, 256, {32, 1}, false);
    chol.factor(a);
    (void)critter::stop();
  });
  using critter::core::KernelClass;
  bool has[32] = {};
  for (const auto& [key, ks] : store.rank(0).table.K)
    has[static_cast<int>(key.cls)] = true;
  // compute kernels the paper lists for Capital (§V-D)
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Potrf)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Trtri)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Trmm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Gemm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Syrk)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::User)]);  // block-to-cyclic
  // communication kernels
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Bcast)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Allreduce)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Reduce)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Gather)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Scatter)]);
}
