#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/stats.hpp"

namespace core = critter::core;

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(core::normal_quantile_two_sided(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(core::normal_quantile_two_sided(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(core::normal_quantile_two_sided(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(core::normal_quantile_two_sided(0.6827), 1.0, 2e-3);
}

TEST(KernelStats, WelfordMatchesTwoPass) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.5, 2.0);
  std::vector<double> xs;
  core::KernelStats ks;
  for (int i = 0; i < 1000; ++i) {
    const double x = u(rng);
    xs.push_back(x);
    ks.add_sample(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(ks.mean, mean, 1e-12);
  EXPECT_NEAR(ks.variance(), var, 1e-12);
}

TEST(KernelStats, MergeEqualsPooledSamples) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> g(10.0, 2.0);
  core::KernelStats a, b, pooled;
  for (int i = 0; i < 300; ++i) {
    const double x = g(rng);
    a.add_sample(x);
    pooled.add_sample(x);
  }
  for (int i = 0; i < 500; ++i) {
    const double x = g(rng) + 1.0;
    b.add_sample(x);
    pooled.add_sample(x);
  }
  a.merge(b);
  EXPECT_EQ(a.n, pooled.n);
  EXPECT_NEAR(a.mean, pooled.mean, 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
}

TEST(KernelStats, MergeWithEmptySides) {
  core::KernelStats a, b;
  b.add_sample(3.0);
  b.add_sample(5.0);
  a.merge(b);  // empty.merge(b) adopts b
  EXPECT_EQ(a.n, 2);
  EXPECT_DOUBLE_EQ(a.mean, 4.0);
  core::KernelStats c;
  a.merge(c);  // merging empty is a no-op
  EXPECT_EQ(a.n, 2);
}

TEST(KernelStats, CiIsInfiniteBeforeMinSamples) {
  core::KernelStats ks;
  ks.add_sample(1.0);
  ks.add_sample(1.1);
  EXPECT_TRUE(std::isinf(ks.relative_ci(1.96, 1, 3)));
  ks.add_sample(0.9);
  EXPECT_TRUE(std::isfinite(ks.relative_ci(1.96, 1, 3)));
}

TEST(KernelStats, CiShrinksWithSamples) {
  core::KernelStats ks;
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(1.0, 0.2);
  double prev = 1e300;
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 200; ++i) ks.add_sample(std::abs(g(rng)) + 0.1);
    const double ci = ks.relative_ci(1.96, 1, 3);
    EXPECT_LT(ci, prev);
    prev = ci;
  }
}

class CiShrinkByK : public ::testing::TestWithParam<int> {};

TEST_P(CiShrinkByK, SqrtKFactor) {
  // The paper's core statistical lever: k path occurrences shrink the
  // relative CI by exactly sqrt(k).
  const int k = GetParam();
  core::KernelStats ks;
  ks.add_sample(1.0);
  ks.add_sample(1.2);
  ks.add_sample(0.8);
  ks.add_sample(1.1);
  const double base = ks.relative_ci(1.96, 1, 3);
  const double shrunk = ks.relative_ci(1.96, k, 3);
  EXPECT_NEAR(shrunk, base / std::sqrt(static_cast<double>(k)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ks, CiShrinkByK, ::testing::Values(1, 2, 4, 9, 16, 100));

TEST(KernelStats, SteadyRespectsTolerance) {
  core::KernelStats ks;
  for (int i = 0; i < 100; ++i) ks.add_sample(1.0 + 0.01 * ((i % 2) ? 1 : -1));
  // tiny variance: steady at modest tolerance
  EXPECT_TRUE(ks.is_steady(1.96, 0.01, 1, 3));
  EXPECT_FALSE(ks.is_steady(1.96, 1e-6, 1, 3));
  // with k_eff large enough, even the tight tolerance passes
  EXPECT_TRUE(ks.is_steady(1.96, 1e-6, 1 << 22, 3));
}

TEST(KernelStats, ZeroMeanNeverSteady) {
  core::KernelStats ks;
  for (int i = 0; i < 10; ++i) ks.add_sample(0.0);
  EXPECT_FALSE(ks.is_steady(1.96, 0.5, 1, 3));
}

TEST(KernelStats, EpochCountersResetIndependentlyOfSamples) {
  core::KernelStats ks;
  ks.add_sample(1.0);
  ks.invocations_this_epoch = 5;
  ks.executions_this_epoch = 2;
  ks.reset_epoch_counters();
  EXPECT_EQ(ks.invocations_this_epoch, 0);
  EXPECT_EQ(ks.executions_this_epoch, 0);
  EXPECT_EQ(ks.n, 1);  // samples survive
}
