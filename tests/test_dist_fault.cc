// Fault tolerance of the subprocess shard fleet (DESIGN.md §10): crashed,
// hung, and misbehaving workers are classified and relaunched with backoff,
// relaunches resume from checkpoints bit-identically, non-strict exchange
// degrades gracefully, and the checkpoint format rejects every corruption.
//
// This binary is its own shard worker: the subprocess executor re-execs it
// with --shard-worker, so main() routes that entry point before gtest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/checkpoint.hpp"
#include "dist/executor.hpp"
#include "dist/protocol.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace dist = critter::dist;
namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study subset(tune::Study study, int nconfigs) {
  if (nconfigs < static_cast<int>(study.configs.size()))
    study.configs.resize(nconfigs);
  return study;
}

/// Bitwise equality of everything the fold produces (recovery must be
/// bit-identical to an uninterrupted run, so no tolerances anywhere).
void expect_equal_results(const tune::TuneResult& a, const tune::TuneResult& b,
                          const std::string& what, bool compare_stats = true) {
  ASSERT_EQ(a.per_config.size(), b.per_config.size()) << what;
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].evaluated, b.per_config[i].evaluated)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].true_time, b.per_config[i].true_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].pred_time, b.per_config[i].pred_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].err, b.per_config[i].err) << what;
    EXPECT_EQ(a.per_config[i].executed, b.per_config[i].executed) << what;
    EXPECT_EQ(a.per_config[i].skipped, b.per_config[i].skipped) << what;
    EXPECT_EQ(a.per_config[i].samples_used, b.per_config[i].samples_used)
        << what;
  }
  EXPECT_EQ(a.tuning_time, b.tuning_time) << what;
  EXPECT_EQ(a.full_time, b.full_time) << what;
  EXPECT_EQ(a.kernel_time, b.kernel_time) << what;
  EXPECT_EQ(a.evaluated_configs, b.evaluated_configs) << what;
  EXPECT_EQ(a.best_predicted(), b.best_predicted()) << what;
  if (compare_stats)
    EXPECT_TRUE(a.stats.same_statistics(b.stats)) << what << " stats";
}

tune::TuneOptions isolated_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.samples = 1;
  opt.reset_per_config = true;
  return opt;
}

tune::TuneOptions shared_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 1;
  return opt;
}

/// A FaultPolicy with test-friendly backoff (the defaults are sized for
/// real fleets, not CI).
dist::FaultPolicy quick_fault(int max_retries, int checkpoint_every = 0) {
  dist::FaultPolicy f;
  f.max_retries = max_retries;
  f.checkpoint_every = checkpoint_every;
  f.backoff_initial_s = 0.05;
  f.backoff_max_s = 0.2;
  return f;
}

const tune::ShardRecovery& recovery_of(const tune::TuneResult& r, int shard) {
  for (const tune::ShardRecovery& sr : r.shard_recovery)
    if (sr.shard == shard) return sr;
  ADD_FAILURE() << "no recovery record for shard " << shard;
  static tune::ShardRecovery none;
  return none;
}

}  // namespace

// ---------------------------------------------------------------------------
// The acceptance contract: crash mid-sweep, relaunch, resume from
// checkpoint, finish bit-identical to the uninterrupted run.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, MidSweepCrashResumesBitIdenticalExchangeOff) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  const tune::TuneOptions opt = shared_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 4);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/2, /*checkpoint_every=*/1);
  sopts.fault_injection = "1:crash-after-batch:2";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 4, sub);

  expect_equal_results(clean, r, "crash-recover, exchange off");
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resumed_batches, 1);  // resumed, not restarted
  EXPECT_FALSE(rec.last_failure.empty());
  EXPECT_NE(rec.last_failure.find("42"), std::string::npos)
      << rec.last_failure;
  EXPECT_EQ(recovery_of(r, 0).retries, 0);
}

TEST(CrashRecovery, MidSweepCrashResumesBitIdenticalExchangeOnStrict) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  const tune::TuneOptions opt = shared_options();
  const dist::ExchangePolicy every1{1};  // strict by default
  dist::InProcessExecutor inproc;
  const tune::TuneResult clean = dist::run_sharded(study, opt, 4, inproc,
                                                   every1);
  ASSERT_GT(clean.exchange_rounds, 0);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/2, /*checkpoint_every=*/1);
  sopts.fault_injection = "1:crash-after-batch:2";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 4, sub, every1);

  expect_equal_results(clean, r, "crash-recover, exchange on strict");
  EXPECT_EQ(r.exchange_rounds, clean.exchange_rounds);
  EXPECT_EQ(r.exchange_skips, 0);  // strict never skips
  EXPECT_TRUE(r.exchange_strict);
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resumed_batches, 1);
}

TEST(CrashRecovery, CrashOnStartRecoversByCleanRestart) {
  // No checkpoints: the relaunch restarts from scratch, which is still
  // bit-identical (nothing was published).
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const tune::TuneOptions opt = isolated_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 2);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1);
  sopts.fault_injection = "0:crash-on-start";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 2, sub);

  expect_equal_results(clean, r, "crash-on-start recovery");
  const tune::ShardRecovery& rec = recovery_of(r, 0);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.resumed_batches, 0);  // nothing to resume from
}

TEST(CrashRecovery, HungWorkerIsStallKilledAndRelaunched) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 6);
  const tune::TuneOptions opt = isolated_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 2);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1, /*checkpoint_every=*/1);
  // A worker making no heartbeat progress within the deadline is killed
  // and relaunched — the hang mode stops beating on purpose.
  sopts.fault.progress_deadline_s = 1.0;
  sopts.fault_injection = "1:hang-after-batch";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 2, sub);

  expect_equal_results(clean, r, "hang recovery");
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_NE(rec.last_failure.find("stalled"), std::string::npos)
      << rec.last_failure;
  // The stall report must say where the worker got stuck: the hang fires
  // right after the batch-1 heartbeat in the evaluate loop, so the last
  // beat the launcher saw carries exactly that phase and batch counter.
  EXPECT_NE(rec.last_failure.find("last phase=evaluate"), std::string::npos)
      << rec.last_failure;
  EXPECT_NE(rec.last_failure.find("batch 1"), std::string::npos)
      << rec.last_failure;
}

// ---------------------------------------------------------------------------
// Retry exhaustion: abort with full context, or degrade when asked to
// ---------------------------------------------------------------------------

TEST(RetryExhaustion, PersistentCrashAbortsNamingShardAndRelaunches) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 4);
  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1);
  sopts.fault_injection = "0:crash-on-start:0:99";  // fires every attempt
  dist::SubprocessExecutor sub(sopts);
  std::string run_dir;
  try {
    dist::run_sharded(study, isolated_options(), 2, sub);
    FAIL() << "persistently crashing worker did not surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard worker 0"), std::string::npos) << what;
    EXPECT_NE(what.find("41"), std::string::npos) << what;
    EXPECT_NE(what.find("relaunch"), std::string::npos) << what;
    EXPECT_NE(what.find("run directory kept"), std::string::npos) << what;
    const auto at = what.find("kept at ");
    ASSERT_NE(at, std::string::npos);
    run_dir = what.substr(at + 8);
  }
  // Satellite contract: the abort marker goes through the atomic publish
  // protocol — a poller can never observe a half-written reason.
  EXPECT_TRUE(dist::published(run_dir, "abort"));
  EXPECT_NE(dist::read_published(run_dir, "abort").find("shard worker 0"),
            std::string::npos);
  dist::remove_dir_tree(run_dir);
}

TEST(RetryExhaustion, DegradeCompletesTheShardInProcessBitIdentically) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const tune::TuneOptions opt = isolated_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 2);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1);
  sopts.fault.on_exhausted = dist::FaultPolicy::OnExhausted::Degrade;
  sopts.fault_injection = "1:crash-on-start:0:99";  // unrecoverable shard
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 2, sub);

  expect_equal_results(clean, r, "degraded completion, exchange off");
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_TRUE(rec.degraded);
  EXPECT_FALSE(rec.recovered);
  EXPECT_EQ(rec.retries, 1);
  EXPECT_FALSE(rec.last_failure.empty());
}

TEST(RetryExhaustion, DegradeWithStrictExchangeIsRejectedUpFront) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  dist::SubprocessOptions sopts;
  sopts.fault.on_exhausted = dist::FaultPolicy::OnExhausted::Degrade;
  dist::SubprocessExecutor sub(sopts);
  try {
    dist::run_sharded(study, shared_options(), 2, sub,
                      dist::ExchangePolicy{1, /*strict=*/true});
    FAIL() << "degrade + strict exchange accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("non-strict"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Non-strict exchange: skip a peer instead of aborting
// ---------------------------------------------------------------------------

TEST(NonStrictExchange, NoFaultsMeansNoSkipsAndBitIdenticalToStrict) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  const tune::TuneOptions opt = shared_options();
  dist::InProcessExecutor inproc;
  const tune::TuneResult strict =
      dist::run_sharded(study, opt, 2, inproc, dist::ExchangePolicy{1, true});
  dist::SubprocessExecutor sub;
  const tune::TuneResult lax =
      dist::run_sharded(study, opt, 2, sub, dist::ExchangePolicy{1, false});
  EXPECT_EQ(lax.exchange_skips, 0);
  EXPECT_FALSE(lax.exchange_strict);
  expect_equal_results(strict, lax, "non-strict without faults");
}

TEST(NonStrictExchange, CorruptDeltaIsSkippedAndTheSweepCompletes) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  dist::SubprocessOptions sopts;
  sopts.fault_injection = "0:corrupt-delta";  // round-0 delta of shard 0
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r =
      dist::run_sharded(study, shared_options(), 2, sub,
                        dist::ExchangePolicy{1, /*strict=*/false});
  EXPECT_GE(r.exchange_skips, 1);
  EXPECT_GE(recovery_of(r, 1).exchange_skips, 1);  // shard 1 skipped peer 0
  EXPECT_EQ(r.evaluated_configs,
            static_cast<int>(study.configs.size()));
}

TEST(NonStrictExchange, CorruptDeltaUnderStrictAbortsTheFleet) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  dist::SubprocessOptions sopts;
  sopts.fault_injection = "0:corrupt-delta";
  dist::SubprocessExecutor sub(sopts);
  try {
    dist::run_sharded(study, shared_options(), 2, sub,
                      dist::ExchangePolicy{1, /*strict=*/true});
    FAIL() << "corrupt delta under strict mode did not surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("snapshot"), std::string::npos) << what;
    const auto at = what.find("kept at ");
    if (at != std::string::npos) dist::remove_dir_tree(what.substr(at + 8));
  }
}

TEST(NonStrictExchange, SlowPeerPastDeadlineIsSkipped) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  dist::SubprocessOptions sopts;
  sopts.fault.exchange_deadline_s = 0.3;
  sopts.fault_injection = "0:slow-exchange:1500";  // 1.5s late round-0 delta
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r =
      dist::run_sharded(study, shared_options(), 2, sub,
                        dist::ExchangePolicy{1, /*strict=*/false});
  EXPECT_GE(r.exchange_skips, 1);
  EXPECT_EQ(r.evaluated_configs, static_cast<int>(study.configs.size()));
  for (const tune::ShardRecovery& sr : r.shard_recovery)
    EXPECT_EQ(sr.retries, 0);  // slow, not faulty: nobody was relaunched
}

// ---------------------------------------------------------------------------
// Checkpoint integrity: torn and corrupt checkpoints can never poison a
// resume
// ---------------------------------------------------------------------------

TEST(CheckpointIntegrity, CorruptLatestSlotFallsBackToPreviousBitIdentically) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  const tune::TuneOptions opt = shared_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 4);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1, /*checkpoint_every=*/1);
  // Checkpoint #2 (slot b) is corrupted at the source and the worker dies;
  // the relaunch must reject slot b by checksum and resume from slot a.
  sopts.fault_injection = "1:corrupt-checkpoint:2";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 4, sub);

  expect_equal_results(clean, r, "corrupt-checkpoint fallback");
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resumed_batches, 1);
}

TEST(CheckpointIntegrity, Kill9MidCheckpointPublishResumesBitIdentically) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  const tune::TuneOptions opt = shared_options();
  const tune::TuneResult clean = tune::merge_shards(study, opt, 4);

  dist::SubprocessOptions sopts;
  sopts.fault = quick_fault(/*max_retries=*/1, /*checkpoint_every=*/1);
  // SIGKILL lands between checkpoint #2's payload rename and its manifest
  // write — the torn slot is unpublished, the previous slot still valid.
  sopts.fault_injection = "1:kill-mid-checkpoint:2";
  dist::SubprocessExecutor sub(sopts);
  const tune::TuneResult r = dist::run_sharded(study, opt, 4, sub);

  expect_equal_results(clean, r, "kill-9 mid-checkpoint resume");
  const tune::ShardRecovery& rec = recovery_of(r, 1);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resumed_batches, 1);
  EXPECT_NE(rec.last_failure.find("signal"), std::string::npos)
      << rec.last_failure;
}

// ---------------------------------------------------------------------------
// Checkpoint wire format: roundtrip plus exhaustive corruption fuzz
// ---------------------------------------------------------------------------

namespace {

dist::ShardCheckpoint sample_checkpoint(const tune::Study& study,
                                        const dist::ShardRange& range) {
  dist::ShardCheckpoint c;
  c.seq = 3;
  c.batches = 2;
  c.rounds = 1;
  c.in_round = 1;
  c.exchange_skips = 1;
  c.skipped = {{0, 0}};
  c.told.resize(2);
  c.told[0].positions = {range.begin, range.begin + 1};
  c.told[1].positions = {range.begin + 2};
  for (auto& tb : c.told) {
    for (int pos : tb.positions) {
      tune::ConfigOutcome oc;
      oc.config = study.configs[pos];
      oc.evaluated = true;
      oc.true_time = 1.5 + pos;
      oc.pred_time = 1.25 + pos;
      oc.err = 0.125;
      oc.executed = 10 + pos;
      oc.skipped = 3;
      oc.samples_used = 1;
      tb.outcomes.push_back(oc);
    }
  }
  c.totals.resize(static_cast<std::size_t>(range.end - range.begin));
  for (std::size_t i = 0; i < c.totals.size(); ++i) {
    c.totals[i].tuning_time = 0.5 * static_cast<double>(i + 1);
    c.totals[i].full_time = 2.0 * static_cast<double>(i + 1);
  }
  return c;
}

}  // namespace

TEST(CheckpointFormat, RoundtripPreservesEveryField) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const dist::ShardCheckpoint c = sample_checkpoint(study, range);
  const std::string payload = dist::serialize_checkpoint(c);
  const dist::ShardCheckpoint back =
      dist::parse_checkpoint(payload, study, range);
  EXPECT_EQ(back.seq, c.seq);
  EXPECT_EQ(back.batches, c.batches);
  EXPECT_EQ(back.rounds, c.rounds);
  EXPECT_EQ(back.in_round, c.in_round);
  EXPECT_EQ(back.exchange_skips, c.exchange_skips);
  EXPECT_EQ(back.skipped, c.skipped);
  ASSERT_EQ(back.told.size(), c.told.size());
  for (std::size_t b = 0; b < c.told.size(); ++b)
    EXPECT_EQ(back.told[b].positions, c.told[b].positions);
  EXPECT_EQ(back.has_exchange_state, c.has_exchange_state);
  // Deep equality via the canonical encoding: re-serializing the parse
  // must reproduce the exact bytes.
  EXPECT_EQ(dist::serialize_checkpoint(back), payload);
}

TEST(CheckpointFormat, EveryTruncationIsRejected) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const std::string payload =
      dist::serialize_checkpoint(sample_checkpoint(study, range));
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        dist::parse_checkpoint(payload.substr(0, len), study, range),
        std::runtime_error)
        << "truncation to " << len << " bytes accepted";
  }
}

TEST(CheckpointFormat, EveryByteFlipIsRejected) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const std::string payload =
      dist::serialize_checkpoint(sample_checkpoint(study, range));
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string bad = payload;
      bad[i] = static_cast<char>(bad[i] ^ mask);
      EXPECT_THROW(dist::parse_checkpoint(bad, study, range),
                   std::runtime_error)
          << "flip of byte " << i << " mask " << static_cast<int>(mask)
          << " accepted";
    }
  }
}

TEST(CheckpointFormat, WrongRangeOrStudyIsRejectedEvenWithValidChecksum) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const std::string payload =
      dist::serialize_checkpoint(sample_checkpoint(study, range));
  // A checkpoint from a different shard plan must not resume this one.
  EXPECT_THROW(
      dist::parse_checkpoint(payload, study, dist::ShardRange{0, 0, 4}),
      std::runtime_error);
  EXPECT_THROW(
      dist::parse_checkpoint(payload, study, dist::ShardRange{1, 4, 6}),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Incremental checkpoint records: roundtrip, log framing, continuity fuzz
// ---------------------------------------------------------------------------

namespace {

/// A small non-empty snapshot, the shape of a per-checkpoint diff.
core::StatSnapshot small_snapshot(int salt) {
  core::StatSnapshot s;
  s.ranks.resize(1);
  core::KernelTable& t = s.ranks[0];
  t.init_world(1);
  const core::KernelKey key{static_cast<core::KernelClass>(salt % 3),
                            {64 + salt, 32, 0, 0},
                            0};
  core::KernelStats ks;
  ks.add_sample(1.5 + salt);
  ks.add_sample(2.25 + salt);
  ks.total_invocations = 2;
  ks.total_executions = 2;
  ks.registered = true;
  t.K.emplace(key, ks);
  t.key_of_hash.emplace(key.hash(), key);
  t.epoch = 1;
  return s;
}

/// An increment that validly extends sample_checkpoint (seq 3 -> 4): one
/// more told batch, one more skip, one more exchange round, the dirty
/// total of the new batch's position, and a non-empty statistics byte
/// patch (wholesale payloads, since the sample base carries no snapshot).
dist::CheckpointIncrement sample_increment(const tune::Study& study,
                                           const dist::ShardRange& range,
                                           bool exchange_state = false) {
  dist::CheckpointIncrement inc;
  inc.base_seq = 3;
  inc.seq = 4;
  inc.batches = 3;
  inc.rounds = 2;
  inc.in_round = 0;
  inc.exchange_skips = 2;
  inc.new_skipped = {{1, 0}};
  inc.new_told.resize(1);
  const int pos = range.begin + 3;
  inc.new_told[0].positions = {pos};
  tune::ConfigOutcome oc;
  oc.config = study.configs[pos];
  oc.evaluated = true;
  oc.true_time = 4.5;
  oc.pred_time = 4.25;
  oc.err = 0.0625;
  oc.executed = 7;
  oc.skipped = 2;
  oc.samples_used = 1;
  inc.new_told[0].outcomes = {oc};
  tune::ConfigTotals ct;
  ct.tuning_time = 8.0;
  ct.full_time = 16.0;
  inc.dirty_totals = {{3, ct}};
  inc.full_patch = small_snapshot(1).to_string();
  inc.has_exchange_state = exchange_state;
  if (exchange_state) {
    inc.mark_patch = small_snapshot(2).to_string();
    inc.own_patch = small_snapshot(3).to_string();
  }
  return inc;
}

}  // namespace

TEST(IncrementFormat, RoundtripPreservesEveryField) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  for (bool exchange : {false, true}) {
    const dist::CheckpointIncrement inc =
        sample_increment(study, range, exchange);
    const std::string payload = dist::serialize_increment(inc);
    const dist::CheckpointIncrement back =
        dist::parse_increment(payload, study, range);
    EXPECT_EQ(back.base_seq, inc.base_seq);
    EXPECT_EQ(back.seq, inc.seq);
    EXPECT_EQ(back.batches, inc.batches);
    EXPECT_EQ(back.rounds, inc.rounds);
    EXPECT_EQ(back.in_round, inc.in_round);
    EXPECT_EQ(back.exchange_skips, inc.exchange_skips);
    EXPECT_EQ(back.new_skipped, inc.new_skipped);
    ASSERT_EQ(back.new_told.size(), inc.new_told.size());
    EXPECT_EQ(back.new_told[0].positions, inc.new_told[0].positions);
    ASSERT_EQ(back.dirty_totals.size(), inc.dirty_totals.size());
    EXPECT_EQ(back.dirty_totals[0].first, inc.dirty_totals[0].first);
    EXPECT_EQ(back.has_exchange_state, inc.has_exchange_state);
    EXPECT_EQ(back.full_patch, inc.full_patch);
    // Deep equality via the canonical encoding.
    EXPECT_EQ(dist::serialize_increment(back), payload);
  }
}

TEST(IncrementFormat, EveryTruncationIsRejected) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const std::string payload =
      dist::serialize_increment(sample_increment(study, range, true));
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(
        dist::parse_increment(payload.substr(0, len), study, range),
        std::runtime_error)
        << "truncation to " << len << " bytes accepted";
  }
}

TEST(IncrementLog, EveryFramedByteFlipIsRejected) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const std::string framed = dist::frame_log_record(
      dist::serialize_increment(sample_increment(study, range)));
  for (std::size_t i = 0; i < framed.size(); ++i) {
    for (unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string bad = framed;
      bad[i] = static_cast<char>(bad[i] ^ mask);
      EXPECT_TRUE(dist::scan_log_records(bad).empty())
          << "flip of byte " << i << " mask " << static_cast<int>(mask)
          << " accepted";
    }
  }
}

TEST(IncrementLog, ScanKeepsThePrefixBeforeATornOrCorruptRecord) {
  const std::vector<std::string> payloads = {"first record", "second",
                                             "third and longest record"};
  std::string log;
  std::vector<std::size_t> ends;  // log size after each complete frame
  for (const std::string& p : payloads) {
    log += dist::frame_log_record(p);
    ends.push_back(log.size());
  }
  // Every truncation keeps exactly the complete frames before the tear.
  for (std::size_t len = 0; len <= log.size(); ++len) {
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= len) ++expect;
    const std::vector<std::string> got =
        dist::scan_log_records(log.substr(0, len));
    ASSERT_EQ(got.size(), expect) << "truncation to " << len;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], payloads[i]);
  }
  // A corrupt middle record hides itself and everything after it.
  std::string bad = log;
  bad[ends[0] + 20] = static_cast<char>(bad[ends[0] + 20] ^ 0x5a);
  const std::vector<std::string> got = dist::scan_log_records(bad);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payloads[0]);
}

TEST(IncrementApply, ExtendsTheBaseAndRejectsEveryContinuityGap) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const dist::ShardRange range{1, 4, 8};
  const dist::ShardCheckpoint base = sample_checkpoint(study, range);

  // The well-formed increment applies and advances every cursor.
  {
    dist::ShardCheckpoint ck = base;
    dist::apply_increment(ck, 3, sample_increment(study, range));
    EXPECT_EQ(ck.seq, 4);
    EXPECT_EQ(ck.batches, 3);
    EXPECT_EQ(ck.rounds, 2);
    EXPECT_EQ(ck.exchange_skips, 2);
    ASSERT_EQ(ck.told.size(), 3u);
    EXPECT_EQ(ck.told[2].positions, std::vector<int>{range.begin + 3});
    ASSERT_EQ(ck.skipped.size(), 2u);
    EXPECT_EQ(ck.skipped[1], (std::pair<int, int>{1, 0}));
    EXPECT_EQ(ck.totals[3].tuning_time, 8.0);
    EXPECT_TRUE(ck.full.same_statistics(small_snapshot(1)));
  }

  // Each discontinuity throws and leaves the checkpoint untouched.
  const std::string before = dist::serialize_checkpoint(base);
  const auto rejects = [&](dist::CheckpointIncrement inc,
                           std::int64_t base_seq, const char* what) {
    dist::ShardCheckpoint ck = base;
    EXPECT_THROW(dist::apply_increment(ck, base_seq, std::move(inc)),
                 std::runtime_error)
        << what;
    EXPECT_EQ(dist::serialize_checkpoint(ck), before)
        << what << " mutated the checkpoint before throwing";
  };
  rejects(sample_increment(study, range), 2, "wrong base seq");
  {
    auto inc = sample_increment(study, range);
    inc.seq = 5;  // base is at seq 3; 5 skips a record
    rejects(std::move(inc), 3, "sequence gap");
  }
  {
    auto inc = sample_increment(study, range);
    inc.batches = 4;  // claims one more batch than new_told carries
    rejects(std::move(inc), 3, "batch cursor mismatch");
  }
  {
    auto inc = sample_increment(study, range);
    inc.exchange_skips = 3;  // claims one more skip than new_skipped
    rejects(std::move(inc), 3, "skip cursor mismatch");
  }
  {
    auto inc = sample_increment(study, range);
    inc.rounds = 0;  // base already completed round 1
    rejects(std::move(inc), 3, "round cursor went backwards");
  }
  {
    auto inc = sample_increment(study, range, true);
    rejects(std::move(inc), 3, "exchange-state flag mismatch");
  }
  {
    auto inc = sample_increment(study, range);
    inc.dirty_totals[0].first = 5;  // base has 4 range-relative totals
    rejects(std::move(inc), 3, "dirty-totals index out of range");
  }
}

int main(int argc, char** argv) {
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
