#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "la/tile_qr.hpp"

namespace la = critter::la;

namespace {

/// Apply the geqrt reflectors to the identity to extract explicit Q (m x m).
la::Matrix geqrt_q(int m, int n, const la::Matrix& v, const la::Matrix& t) {
  la::Matrix q(m, m);
  for (int i = 0; i < m; ++i) q(i, i) = 1.0;
  // Q = H_0...H_{n-1}; apply block reflector: Q = (I - V T V^T) on identity.
  // Use tpmqrt-style math by splitting V into [unit-lower; rest]: easier to
  // apply reflectors one at a time from the stored vectors.
  for (int j = n - 1; j >= 0; --j) {
    // v_j = [0.. 1 v(j+1..m-1, j)]
    std::vector<double> vec(m, 0.0);
    vec[j] = 1.0;
    for (int i = j + 1; i < m; ++i) vec[i] = v(i, j);
    // tau_j = t(j, j) only if T were built column-by-column; recover tau from
    // T diagonal (geqrt stores tau on the diagonal of T).
    const double tau = t(j, j);
    // q = (I - tau v v^T) q
    for (int c = 0; c < m; ++c) {
      double w = 0.0;
      for (int i = j; i < m; ++i) w += vec[i] * q(i, c);
      w *= tau;
      for (int i = j; i < m; ++i) q(i, c) -= vec[i] * w;
    }
  }
  return q;
}

}  // namespace

class GeqrtShapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeqrtShapes, QRReconstructsTile) {
  auto [m, n] = GetParam();
  la::Matrix a0 = la::random_matrix(m, n, 31);
  la::Matrix a = a0;
  la::Matrix t(n, n);
  la::geqrt(m, n, a.data(), m, t.data(), n);

  la::Matrix q = geqrt_q(m, n, a, t);
  // R = upper triangle
  la::Matrix r(m, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= std::min(j, m - 1); ++i) r(i, j) = a(i, j);
  la::Matrix qr(m, n);
  la::gemm(la::Trans::N, la::Trans::N, m, n, m, 1.0, q.data(), m, r.data(), m,
           0.0, qr.data(), m);
  EXPECT_LT(la::frob_diff(qr, a0), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrtShapes,
                         ::testing::Values(std::tuple{4, 4}, std::tuple{8, 4},
                                           std::tuple{16, 16},
                                           std::tuple{24, 8},
                                           std::tuple{9, 3}));

class TpqrtCase
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TpqrtCase, StackedQRMatchesDirectQR) {
  auto [m, n, l] = GetParam();
  // A: n x n upper triangular (from a prior QR); B: m x n (dense or upper
  // triangular if l == n).
  la::Matrix a = la::random_matrix(n, n, 41);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) a(i, j) = 0.0;
  for (int i = 0; i < n; ++i) a(i, i) += 2.0;
  la::Matrix b = la::random_matrix(m, n, 42);
  if (l == n)
    for (int j = 0; j < n; ++j)
      for (int i = j + 1; i < m; ++i) b(i, j) = 0.0;

  // Stack [A; B] for the reference factorization.
  la::Matrix stacked(n + m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) stacked(i, j) = a(i, j);
    for (int i = 0; i < m; ++i) stacked(n + i, j) = b(i, j);
  }

  la::Matrix t(n, n);
  la::tpqrt(m, n, l, a.data(), n, b.data(), m, t.data(), n);

  // |R| from tpqrt must match |R| from a dense QR of the stack (signs may
  // differ by a diagonal +-1).
  la::Matrix ref = stacked;
  la::Matrix tref(n, n);
  la::geqrt(n + m, n, ref.data(), n + m, tref.data(), n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(a(i, j)), std::abs(ref(i, j)), 1e-10)
          << "R mismatch at " << i << "," << j;
}

TEST_P(TpqrtCase, TpmqrtAppliesQTCorrectly) {
  auto [m, n, l] = GetParam();
  la::Matrix a = la::random_matrix(n, n, 51);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) a(i, j) = 0.0;
  for (int i = 0; i < n; ++i) a(i, i) += 2.0;
  la::Matrix b = la::random_matrix(m, n, 52);
  if (l == n)
    for (int j = 0; j < n; ++j)
      for (int i = j + 1; i < m; ++i) b(i, j) = 0.0;

  la::Matrix a_f = a, b_f = b, t(n, n);
  la::tpqrt(m, n, l, a_f.data(), n, b_f.data(), m, t.data(), n);

  // Applying Q^T to the original stacked [A; B] must give [R; 0].
  la::Matrix top = a, bot = b;
  la::tpmqrt(la::Trans::T, m, n, n, b_f.data(), m, t.data(), n, top.data(), n,
             bot.data(), m);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) EXPECT_NEAR(top(i, j), a_f(i, j), 1e-10);
    for (int i = 0; i < m; ++i) EXPECT_NEAR(bot(i, j), 0.0, 1e-10);
  }

  // And Q Q^T = I: applying Q after Q^T restores the original stack.
  la::tpmqrt(la::Trans::N, m, n, n, b_f.data(), m, t.data(), n, top.data(), n,
             bot.data(), m);
  EXPECT_LT(la::frob_diff(top, a), 1e-10);
  EXPECT_LT(la::frob_diff(bot, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Cases, TpqrtCase,
                         ::testing::Values(std::tuple{4, 4, 0},
                                           std::tuple{8, 4, 0},
                                           std::tuple{16, 8, 0},
                                           std::tuple{4, 4, 4},
                                           std::tuple{8, 8, 8},
                                           std::tuple{12, 6, 6}));

TEST(TileQrFlops, AccountForPentagonalStructure) {
  EXPECT_GT(la::tpqrt_flops(16, 8, 0), la::tpqrt_flops(16, 8, 8));
  EXPECT_GT(la::tpmqrt_flops(16, 8, 8, 0), la::tpmqrt_flops(16, 8, 8, 8));
  EXPECT_GT(la::geqrt_flops(16, 8), 0.0);
}
