// Statistics-lifecycle subsystem (core/stat_store): deterministic merge,
// exact merge inverse (diff), snapshot/restore round-trips on a profiler
// Store, and versioned binary + JSON serialization round-trips including
// SizeModel state.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/stat_store.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace tune = critter::tune;
using critter::Policy;

namespace {

core::KernelKey key_of(int cls, std::int64_t m, std::int64_t n) {
  return core::KernelKey{static_cast<core::KernelClass>(cls), {m, n, 0, 0}, 0};
}

core::KernelStats samples(std::initializer_list<double> xs) {
  core::KernelStats ks;
  for (double x : xs) {
    ks.add_sample(x);
    ++ks.total_invocations;
    ++ks.total_executions;
  }
  ks.registered = true;
  return ks;
}

/// A populated table: a few kernels, a sub-channel, a size-model bucket.
core::KernelTable make_table(int nranks, int salt) {
  core::KernelTable t;
  t.init_world(nranks);
  for (int k = 0; k < 3; ++k) {
    const core::KernelKey key = key_of(k, 64 + salt, 32);
    t.K.emplace(key, samples({1.0 + salt, 2.0 + salt, 3.0 + k}));
    t.key_of_hash.emplace(key.hash(), key);
  }
  std::vector<int> row;
  for (int r = 0; r < nranks / 2; ++r) row.push_back(r);
  t.channels.add_channel(row);
  t.size_model.observe(key_of(0, 64, 32), 1e6 * (1 + salt), 1e-3);
  t.size_model.observe(key_of(0, 128, 64), 2e6 * (1 + salt), 2e-3);
  t.epoch = salt;
  return t;
}

/// A real statistics snapshot grown by an actual sweep (exercises every
/// field the serializer must carry, including eager/extrapolate state).
core::StatSnapshot sweep_snapshot(Policy policy, bool extrapolate) {
  auto study = tune::slate_cholesky_study(false);
  study.configs.resize(4);
  tune::TuneOptions opt;
  opt.policy = policy;
  opt.samples = 2;
  opt.tolerance = 0.5;
  opt.extrapolate = extrapolate;
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_FALSE(r.stats.empty());
  return r.stats;
}

}  // namespace

TEST(KernelStats, UnmergeIsExactInverseOfMerge) {
  const core::KernelStats a = samples({1.0, 2.0, 3.5, 0.25});
  const core::KernelStats b = samples({4.0, 5.5});
  core::KernelStats c = a;
  c.merge(b);
  c.unmerge(a);
  ASSERT_EQ(c.n, b.n);
  EXPECT_NEAR(c.mean, b.mean, 1e-12);
  EXPECT_NEAR(c.m2, b.m2, 1e-12);
  // unmerging everything leaves an empty estimator
  core::KernelStats d = a;
  d.unmerge(a);
  EXPECT_EQ(d.n, 0);
  EXPECT_EQ(d.mean, 0.0);
  EXPECT_EQ(d.m2, 0.0);
}

TEST(KernelTable, MergeIsDeterministic) {
  const core::KernelTable a = make_table(8, 1);
  const core::KernelTable b = make_table(8, 2);
  core::KernelTable m1 = a;
  m1.merge(b);
  core::KernelTable m2 = a;
  m2.merge(b);
  EXPECT_TRUE(m1.same_statistics(m2));
  EXPECT_FALSE(m1.same_statistics(a));
}

TEST(KernelTable, MergeOrderPermutationsAgree) {
  // Integer state (counts, registries, channels) must agree exactly across
  // merge orders; floating moments to tight tolerance (Chan's merge is
  // order-insensitive only in exact arithmetic).
  const core::KernelTable a = make_table(8, 1);
  const core::KernelTable b = make_table(8, 2);
  const core::KernelTable c = make_table(8, 5);

  core::KernelTable ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  core::KernelTable ac_b = a;
  ac_b.merge(c);
  ac_b.merge(b);

  ASSERT_EQ(ab_c.K.size(), ac_b.K.size());
  for (const auto& [key, ks] : ab_c.K) {
    const auto it = ac_b.K.find(key);
    ASSERT_NE(it, ac_b.K.end());
    EXPECT_EQ(ks.n, it->second.n);
    EXPECT_EQ(ks.total_invocations, it->second.total_invocations);
    EXPECT_EQ(ks.total_executions, it->second.total_executions);
    EXPECT_NEAR(ks.mean, it->second.mean, 1e-12);
    EXPECT_NEAR(ks.m2, it->second.m2, 1e-12);
  }
  EXPECT_TRUE(ab_c.channels.same_channels(ac_b.channels));
  EXPECT_EQ(ab_c.epoch, ac_b.epoch);
}

TEST(KernelTable, DiffIsMergeInverse) {
  const core::KernelTable base = make_table(8, 1);
  core::KernelTable after = base;
  after.merge(make_table(8, 3));  // evolve on top of base
  after.new_epoch();

  const core::KernelTable delta = after.diff(base);
  core::KernelTable rebuilt = base;
  rebuilt.merge(delta);

  ASSERT_EQ(rebuilt.K.size(), after.K.size());
  for (const auto& [key, ks] : after.K) {
    const auto it = rebuilt.K.find(key);
    ASSERT_NE(it, rebuilt.K.end());
    EXPECT_EQ(ks.n, it->second.n);
    EXPECT_NEAR(ks.mean, it->second.mean, 1e-12);
    EXPECT_NEAR(ks.m2, it->second.m2, 1e-12);
  }
  EXPECT_TRUE(rebuilt.channels.same_channels(after.channels));
  EXPECT_EQ(rebuilt.epoch, after.epoch);

  // An untouched table diffs to an empty delta.
  const core::KernelTable none = base.diff(base);
  EXPECT_TRUE(none.K.empty());
  EXPECT_TRUE(none.key_of_hash.empty());
  EXPECT_TRUE(none.pending_eager.empty());
}

namespace {

core::KernelStats moments(std::initializer_list<double> xs) {
  core::KernelStats ks;
  for (double x : xs) ks.add_sample(x);
  return ks;
}

/// A worker table that absorbed `base`'s pending-eager entry for `key` at
/// first sighting (mirroring detail::note_invocation: moments merged, hash
/// registered, pending erased) and then collected `own` local samples.
core::KernelTable absorb_and_sample(const core::KernelTable& base,
                                    const core::KernelKey& key,
                                    std::initializer_list<double> own) {
  core::KernelTable w = base;
  core::KernelStats ks;
  ks.registered = true;
  const auto pend = w.pending_eager.find(key.hash());
  EXPECT_NE(pend, w.pending_eager.end());
  ks.merge(pend->second);
  ks.agg_hash = pend->second.agg_hash;
  w.pending_eager.erase(pend);
  w.key_of_hash.emplace(key.hash(), key);
  for (double x : own) {
    ks.add_sample(x);
    ++ks.total_invocations;
    ++ks.total_executions;
  }
  w.K.emplace(key, ks);
  return w;
}

}  // namespace

TEST(KernelTable, PendingAbsorbedByTwoSiblingsCountsOnce) {
  // Regression: two same-batch configurations each absorb the shared
  // snapshot's pending-eager entry at first sighting.  Without tombstones
  // the entry's samples arrived once per absorbing delta.
  core::KernelTable base = make_table(8, 1);
  const core::KernelKey key = key_of(3, 256, 128);
  base.pending_eager.emplace(key.hash(), moments({1.0, 2.0, 3.0}));

  const core::KernelTable w1 = absorb_and_sample(base, key, {4.0});
  const core::KernelTable w2 = absorb_and_sample(base, key, {5.0, 6.0});
  const core::KernelTable d1 = w1.diff(base);
  const core::KernelTable d2 = w2.diff(base);
  EXPECT_EQ(d1.pending_tombstones.size(), 1u);
  EXPECT_EQ(d2.pending_tombstones.size(), 1u);
  ASSERT_EQ(d1.K.count(key), 1u);
  EXPECT_EQ(d1.K.at(key).n, 1);  // absorbed moments shed from the delta

  core::KernelTable merged = base;
  merged.merge(d1);
  merged.merge(d2);
  ASSERT_EQ(merged.K.count(key), 1u);
  // 3 pending samples counted once, plus 1 + 2 own samples.
  EXPECT_EQ(merged.K.at(key).n, 6);
  EXPECT_EQ(merged.pending_eager.count(key.hash()), 0u);
}

TEST(KernelTable, SiblingRegisteredPendingGrowthIsNotDropped) {
  // Regression: one sibling registers the kernel (absorbing the base
  // entry) while another only grows the pending entry with more eager
  // statistics.  The growth used to be erased by the registered-kernel
  // purge; now it feeds the K entry, in either merge order.
  core::KernelTable base = make_table(8, 1);
  const core::KernelKey key = key_of(3, 256, 128);
  base.pending_eager.emplace(key.hash(), moments({1.0, 2.0}));

  const core::KernelTable w1 = absorb_and_sample(base, key, {3.0});
  core::KernelTable w2 = base;
  w2.pending_eager.at(key.hash()).merge(moments({7.0, 8.0, 9.0}));
  const core::KernelTable d1 = w1.diff(base);
  const core::KernelTable d2 = w2.diff(base);
  EXPECT_TRUE(d1.pending_tombstones.size() == 1 && d2.pending_tombstones.empty());
  ASSERT_EQ(d2.pending_eager.count(key.hash()), 1u);
  EXPECT_EQ(d2.pending_eager.at(key.hash()).n, 3);

  for (int order = 0; order < 2; ++order) {
    core::KernelTable merged = base;
    merged.merge(order == 0 ? d1 : d2);
    merged.merge(order == 0 ? d2 : d1);
    ASSERT_EQ(merged.K.count(key), 1u) << "order " << order;
    // 2 base pending + 1 own + 3 grown = 6 samples either way.
    EXPECT_EQ(merged.K.at(key).n, 6) << "order " << order;
    EXPECT_EQ(merged.pending_eager.count(key.hash()), 0u) << "order " << order;
  }
}

TEST(StatSnapshot, StoreSnapshotRestoreRoundTrips) {
  const core::StatSnapshot snap = sweep_snapshot(Policy::OnlinePropagation, false);
  critter::Config pc;
  pc.mode = critter::ExecMode::Model;
  critter::Store store(snap.nranks(), pc);
  EXPECT_FALSE(store.snapshot().same_statistics(snap));
  store.restore(snap);
  EXPECT_TRUE(store.snapshot().same_statistics(snap));
  // diff against the restored base is empty until the store evolves
  const core::StatSnapshot delta = store.diff(snap);
  for (const core::KernelTable& t : delta.ranks) EXPECT_TRUE(t.K.empty());
}

TEST(StatSnapshot, BinarySerializationRoundTrips) {
  for (bool extrapolate : {false, true}) {
    const core::StatSnapshot snap =
        sweep_snapshot(Policy::ConditionalExecution, extrapolate);
    std::stringstream buf;
    snap.save(buf, core::StatSnapshot::Format::Binary);
    const core::StatSnapshot loaded = core::StatSnapshot::load(buf);
    EXPECT_TRUE(loaded.same_statistics(snap)) << "extrapolate=" << extrapolate;
  }
}

TEST(StatSnapshot, JsonSerializationRoundTrips) {
  // Eager propagation populates aggregation hashes and (potentially)
  // pending entries; extrapolation populates the size model.
  for (Policy policy : {Policy::EagerPropagation, Policy::OnlinePropagation}) {
    const core::StatSnapshot snap = sweep_snapshot(policy, true);
    std::stringstream buf;
    snap.save(buf, core::StatSnapshot::Format::Json);
    const core::StatSnapshot loaded = core::StatSnapshot::load(buf);
    EXPECT_TRUE(loaded.same_statistics(snap))
        << critter::policy_name(policy);
  }
}

TEST(StatSnapshot, JsonAndBinaryAgree) {
  const core::StatSnapshot snap = sweep_snapshot(Policy::EagerPropagation, true);
  std::stringstream jbuf, bbuf;
  snap.save(jbuf, core::StatSnapshot::Format::Json);
  snap.save(bbuf, core::StatSnapshot::Format::Binary);
  EXPECT_TRUE(core::StatSnapshot::load(jbuf).same_statistics(
      core::StatSnapshot::load(bbuf)));
}

TEST(StatSnapshot, FileRoundTripAutoDetectsFormat) {
  const core::StatSnapshot snap = sweep_snapshot(Policy::OnlinePropagation, true);
  const char* bin_path = "test_stat_store_snapshot.bin";
  const char* json_path = "test_stat_store_snapshot.json";
  snap.save_file(bin_path, core::StatSnapshot::Format::Binary);
  snap.save_file(json_path, core::StatSnapshot::Format::Json);
  EXPECT_TRUE(core::StatSnapshot::load_file(bin_path).same_statistics(snap));
  EXPECT_TRUE(core::StatSnapshot::load_file(json_path).same_statistics(snap));
  std::remove(bin_path);
  std::remove(json_path);
}

TEST(StatSnapshot, LoadRejectsGarbage) {
  std::stringstream bad("this is not a snapshot");
  EXPECT_THROW(core::StatSnapshot::load(bad), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(core::StatSnapshot::load(empty), std::runtime_error);
  std::stringstream wrong_json("{\"format\":\"something-else\",\"version\":1}");
  EXPECT_THROW(core::StatSnapshot::load(wrong_json), std::runtime_error);
}

namespace {

/// A compact two-rank snapshot for the byte-level fuzz sweeps (every
/// truncation point / every flipped byte), where a full sweep snapshot
/// would make the quadratic sweep take minutes.
core::StatSnapshot small_snapshot() {
  core::StatSnapshot s;
  s.ranks.push_back(make_table(2, 1));
  s.ranks.push_back(make_table(2, 2));
  s.ranks[1].pending_eager.emplace(key_of(5, 16, 16).hash(),
                                   samples({0.25, 0.5}));
  return s;
}

}  // namespace

TEST(StatSnapshot, EveryBinaryTruncationIsRejected) {
  // Fuzz-ish truncation sweep: a short read anywhere in the file must
  // surface as a clear snapshot error (never a deep CHECK on garbage
  // records, an allocation blow-up, or silently partial state).
  const core::StatSnapshot snap = small_snapshot();
  std::ostringstream buf;
  snap.save(buf, core::StatSnapshot::Format::Binary);
  const std::string bytes = buf.str();
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream is(bytes.substr(0, len));
    try {
      core::StatSnapshot::load(is);
      FAIL() << "truncation at byte " << len << " loaded successfully";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("stat snapshot"),
                std::string::npos)
          << "at byte " << len << ": " << e.what();
    }
  }
}

TEST(StatSnapshot, EveryJsonTruncationIsRejected) {
  const core::StatSnapshot snap = small_snapshot();
  std::ostringstream buf;
  snap.save(buf, core::StatSnapshot::Format::Json);
  const std::string text = buf.str();
  // The writer ends "]}\n": dropping only the trailing newline still
  // leaves complete JSON, so truncate strictly inside the document.
  for (std::size_t len = 1; len + 1 < text.size(); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(core::StatSnapshot::load(is), std::runtime_error)
        << "at byte " << len;
  }
}

TEST(StatSnapshot, EveryBinaryByteCorruptionIsRejected) {
  // Flip every byte in turn (XOR 0xFF).  Header corruption trips the
  // magic/version/rank-count checks; anything inside a rank chunk trips
  // its FNV checksum before a single record is decoded.
  const core::StatSnapshot snap = small_snapshot();
  std::ostringstream buf;
  snap.save(buf, core::StatSnapshot::Format::Binary);
  const std::string bytes = buf.str();
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0xFF);
    std::istringstream is(corrupt);
    EXPECT_THROW(core::StatSnapshot::load(is), std::runtime_error)
        << "at byte " << at;
  }
}

TEST(StatSnapshot, PreviousVersionLoadsThroughUpgradeHook) {
  // Cross-version migration: a version-1 file (the previous release's
  // layout, no tombstone lists, no chunk framing) round-trips through the
  // registered v1 -> v2 upgrade hook in both formats.
  ASSERT_TRUE(core::snapshot_upgrade_registered(
      core::StatSnapshot::oldest_upgradable_version()));
  const core::StatSnapshot snap = sweep_snapshot(Policy::EagerPropagation, true);
  for (const auto fmt : {core::StatSnapshot::Format::Binary,
                         core::StatSnapshot::Format::Json}) {
    std::stringstream buf;
    snap.save(buf, fmt, core::StatSnapshot::oldest_upgradable_version());
    EXPECT_TRUE(core::StatSnapshot::load(buf).same_statistics(snap));
  }
  // A user-registered hook replaces the built-in and actually runs.
  core::register_snapshot_upgrade(1, [](core::StatSnapshot& s) {
    for (core::KernelTable& t : s.ranks) t.epoch += 1000;
  });
  std::stringstream buf;
  snap.save(buf, core::StatSnapshot::Format::Binary, 1);
  const core::StatSnapshot upgraded = core::StatSnapshot::load(buf);
  EXPECT_EQ(upgraded.ranks[0].epoch, snap.ranks[0].epoch + 1000);
  core::register_snapshot_upgrade(1, [](core::StatSnapshot&) {});
}

TEST(StatSnapshot, UnknownVersionsAreRejected) {
  const core::StatSnapshot snap = sweep_snapshot(Policy::OnlinePropagation, false);
  // Writing an unknown version is refused outright.
  std::ostringstream sink;
  EXPECT_THROW(snap.save(sink, core::StatSnapshot::Format::Binary, 3),
               std::runtime_error);
  EXPECT_THROW(snap.save(sink, core::StatSnapshot::Format::Binary, 0),
               std::runtime_error);
  // Reading one fails with the version named, both formats.
  std::ostringstream buf;
  snap.save(buf, core::StatSnapshot::Format::Binary);
  std::string bytes = buf.str();
  bytes[8] = 99;  // bytes [8,12) hold the little-endian version u32
  std::istringstream is(bytes);
  try {
    core::StatSnapshot::load(is);
    FAIL() << "unknown binary version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::stringstream js("{\"format\":\"critter-stat-snapshot\",\"version\":99,"
                       "\"nranks\":1,\"ranks\":[{}]}");
  EXPECT_THROW(core::StatSnapshot::load(js), std::runtime_error);
}

TEST(StatSnapshot, DeltaTombstonesSurviveSerialization) {
  // A diff()-produced delta that tombstoned a pending entry must carry the
  // tombstone through save/load — the file-borne exchange path depends on
  // merge() seeing it on the far side.
  core::StatSnapshot base;
  base.ranks.push_back(make_table(2, 1));
  base.ranks.push_back(make_table(2, 2));
  const core::KernelKey pending_key = key_of(7, 256, 128);
  base.ranks[0].pending_eager.emplace(pending_key.hash(),
                                      samples({0.5, 0.75}));

  core::StatSnapshot evolved = base;
  // First local sighting: the profiler registers the kernel and absorbs
  // the pending moments into K.
  core::KernelStats grown = samples({2.0});
  grown.merge(base.ranks[0].pending_eager.at(pending_key.hash()));
  evolved.ranks[0].K.emplace(pending_key, grown);
  evolved.ranks[0].key_of_hash.emplace(pending_key.hash(), pending_key);
  evolved.ranks[0].pending_eager.erase(pending_key.hash());

  const core::StatSnapshot delta = evolved.diff(base);
  ASSERT_EQ(delta.ranks[0].pending_tombstones.size(), 1u);

  // The fold a peer performs on the in-memory delta — the reference the
  // file transport must add nothing to.
  core::StatSnapshot replay_mem = base;
  replay_mem.merge(delta);
  EXPECT_TRUE(replay_mem.ranks[0].pending_eager.empty());
  EXPECT_EQ(replay_mem.ranks[0].K.at(pending_key).n, 3);

  for (const auto fmt : {core::StatSnapshot::Format::Binary,
                         core::StatSnapshot::Format::Json}) {
    std::stringstream buf;
    delta.save(buf, fmt);
    const core::StatSnapshot loaded = core::StatSnapshot::load(buf);
    EXPECT_EQ(loaded.ranks[0].pending_tombstones,
              delta.ranks[0].pending_tombstones);
    // load() (re-)registers the world channel in every table; a delta
    // carries only new channels, so compare against that normal form.
    core::StatSnapshot expect = delta;
    for (core::KernelTable& t : expect.ranks) t.init_world(expect.nranks());
    EXPECT_TRUE(loaded.same_statistics(expect));
    // Folding the round-tripped delta is bit-identical to folding the
    // in-memory one — including the absorb-once pending accounting, which
    // only works if the tombstone survived the file.
    core::StatSnapshot replay = base;
    replay.merge(loaded);
    EXPECT_TRUE(replay.same_statistics(replay_mem));
  }
  // ...and version 1 cannot represent it.
  std::ostringstream sink;
  EXPECT_THROW(delta.save(sink, core::StatSnapshot::Format::Binary, 1),
               std::runtime_error);
}

TEST(StatSnapshot, SnapshotDiffIsMergeInverse) {
  core::StatSnapshot base;
  base.ranks.push_back(make_table(4, 1));
  base.ranks.push_back(make_table(4, 2));
  core::StatSnapshot delta_in;
  delta_in.ranks.push_back(make_table(4, 3));
  delta_in.ranks.push_back(make_table(4, 5));
  core::StatSnapshot evolved = base;
  evolved.merge(delta_in);
  const core::StatSnapshot delta = evolved.diff(base);
  core::StatSnapshot replay = base;
  replay.merge(delta);
  EXPECT_TRUE(replay.same_statistics(evolved));
  core::StatSnapshot mismatched;
  mismatched.ranks.push_back(make_table(4, 1));
  EXPECT_THROW(evolved.diff(mismatched), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Golden bit-identity: serialization must preserve the fixture statistics
// ---------------------------------------------------------------------------

#include <fstream>

#include "golden_digest.hpp"

TEST(StatSnapshot, GoldenSweepStatisticsSurviveSerializationBitIdentical) {
  // The fixture is digest_result + digest_snapshot of the online golden
  // sweep; the snapshot section pins every statistic's exact bits.
  const std::string path =
      std::string(CRITTER_GOLDEN_DIR) + "/sweep_online.digest";
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.is_open()) << "missing golden fixture " << path
                            << " (regenerate with tools/gen_golden)";
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string fixture = buf.str();
  const std::size_t at = fixture.find("snapshot nranks=");
  ASSERT_NE(at, std::string::npos) << "fixture has no snapshot section";
  const std::string expected = fixture.substr(at);

  const tune::TuneResult r = critter::testing::golden_sweep("online");
  EXPECT_EQ(critter::testing::digest_snapshot(r.stats), expected)
      << "live sweep statistics diverge from the fixture";

  // In-memory binary round-trip: string-backed serialize, span-based parse.
  const core::StatSnapshot parsed =
      core::StatSnapshot::from_string(r.stats.to_string());
  EXPECT_EQ(critter::testing::digest_snapshot(parsed), expected)
      << "to_string/from_string round-trip bent a statistic";

  // File round-trip through the mmap-backed loader.
  const std::string tmp = "golden_roundtrip.snap";
  r.stats.save_file(tmp);
  const core::StatSnapshot loaded = core::StatSnapshot::load_file(tmp);
  std::remove(tmp.c_str());
  EXPECT_EQ(critter::testing::digest_snapshot(loaded), expected)
      << "save_file/load_file round-trip bent a statistic";
}

// ---------------------------------------------------------------------------
// Dirty-rank sparse transport (DESIGN.md §13)
// ---------------------------------------------------------------------------

#include <cstring>

#include "util/hash.hpp"

namespace {

/// base -> evolved pair where only rank 1's chunk bytes change: the shape
/// every sparse-transport test pivots on (rank 0 must be omitted).
std::pair<core::StatSnapshot, core::StatSnapshot> patch_pair() {
  const core::StatSnapshot base = small_snapshot();
  core::StatSnapshot evolved = base;
  evolved.ranks[1].merge(make_table(2, 7));
  return {base, evolved};
}

void put_u32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), 4);
}
void put_u64(std::string& s, std::uint64_t v) {
  s.append(reinterpret_cast<const char*>(&v), 8);
}
void put_i64(std::string& s, std::int64_t v) {
  s.append(reinterpret_cast<const char*>(&v), 8);
}

/// Hand-craft a sparse payload with attacker-chosen rank indices; every
/// chunk is the canonical clean body (epoch + six zero counts) with a
/// *correct* checksum, so only the index structure is under test.
std::string craft_sparse(std::uint32_t nranks, std::uint8_t mode,
                         const std::vector<std::uint32_t>& dirty_ranks) {
  std::string s;
  s.append("CRSPRS1\n");
  put_u32(s, core::StatSnapshot::current_version());
  put_u32(s, nranks);
  s.push_back(static_cast<char>(mode));
  for (std::uint32_t r = 0; r < nranks; ++r) put_i64(s, 5);
  put_u32(s, static_cast<std::uint32_t>(dirty_ranks.size()));
  std::string body(8 + 6 * 8, '\0');
  const std::int64_t epoch = 5;
  std::memcpy(body.data(), &epoch, 8);
  for (std::uint32_t rank : dirty_ranks) {
    put_u32(s, rank);
    put_u64(s, body.size());
    put_u64(s, critter::util::fnv1a(body.data(), body.size()));
    s += body;
  }
  return s;
}

}  // namespace

TEST(SparseTransport, PatchRoundTripIsByteIdentical) {
  const auto [base, evolved] = patch_pair();
  const std::string base_full = base.to_string();
  const std::string new_full = evolved.to_string();
  const std::string patch = core::encode_sparse_patch(base_full, new_full);

  EXPECT_TRUE(core::is_sparse_payload(patch));
  EXPECT_FALSE(core::is_sparse_payload(new_full));
  const core::SparsePayloadInfo info = core::sparse_payload_info(patch);
  EXPECT_EQ(info.mode, 0);
  EXPECT_EQ(info.nranks, 2u);
  EXPECT_EQ(info.ndirty, 1u);  // rank 0 untouched, omitted outright
  EXPECT_LT(patch.size(), new_full.size());

  // The transport contract: splicing reproduces the target bytes exactly.
  EXPECT_EQ(core::apply_sparse_patch(base_full, patch), new_full);

  // Identical payloads collapse to a header-only patch that round-trips.
  const std::string none = core::encode_sparse_patch(base_full, base_full);
  EXPECT_EQ(core::sparse_payload_info(none).ndirty, 0u);
  EXPECT_EQ(core::apply_sparse_patch(base_full, none), base_full);
}

TEST(SparseTransport, EpochOnlyChangeShipsNoChunk) {
  const core::StatSnapshot base = small_snapshot();
  core::StatSnapshot evolved = base;
  evolved.ranks[0].epoch += 7;  // only the leading 8 bytes of the chunk move
  const std::string base_full = base.to_string();
  const std::string new_full = evolved.to_string();
  const std::string patch = core::encode_sparse_patch(base_full, new_full);
  EXPECT_EQ(core::sparse_payload_info(patch).ndirty, 0u);
  // Header + 2 epochs + dirty count: nowhere near a table chunk.
  EXPECT_LE(patch.size(), 64u);
  EXPECT_EQ(core::apply_sparse_patch(base_full, patch), new_full);
}

TEST(SparseTransport, InPlaceApplyTracksBytesAndSnapshotTogether) {
  const auto [base, evolved] = patch_pair();
  std::string bytes = base.to_string();
  core::StatSnapshot snap = core::StatSnapshot::from_string(bytes);
  const std::uint64_t clean_version = snap.ranks[0].version;

  const std::string new_full = evolved.to_string();
  core::apply_sparse_patch_in_place(
      bytes, snap, core::encode_sparse_patch(bytes, new_full));
  EXPECT_EQ(bytes, new_full);
  EXPECT_TRUE(snap.same_statistics(core::StatSnapshot::from_string(new_full)));
  // Only the dirty rank's table was rebuilt (and its version bumped); the
  // clean rank kept its decoded table untouched.
  EXPECT_EQ(snap.ranks[0].version, clean_version);
  EXPECT_GT(snap.ranks[1].version, clean_version);

  // Chain a second patch (epoch-only this time) onto the updated cache.
  core::StatSnapshot further = evolved;
  further.ranks[0].epoch += 3;
  const std::string next_full = further.to_string();
  core::apply_sparse_patch_in_place(
      bytes, snap, core::encode_sparse_patch(bytes, next_full));
  EXPECT_EQ(bytes, next_full);
  EXPECT_EQ(snap.ranks[0].epoch, further.ranks[0].epoch);
  EXPECT_TRUE(snap.same_statistics(core::StatSnapshot::from_string(next_full)));
}

TEST(SparseTransport, StandaloneDeltaExpandsBitIdentical) {
  const auto [base, evolved] = patch_pair();
  const core::StatSnapshot delta = evolved.diff(base);
  const std::string full = delta.to_string();
  const std::string sparse = core::encode_sparse_delta(delta);

  const core::SparsePayloadInfo info = core::sparse_payload_info(sparse);
  EXPECT_EQ(info.mode, 1);
  EXPECT_EQ(info.ndirty, 1u);  // rank 0's clean chunk folds into the epochs
  EXPECT_LT(sparse.size(), full.size());
  EXPECT_EQ(core::expand_sparse_delta(sparse), full);

  // Every snapshot reader accepts mode-1 payloads via auto-expansion.
  EXPECT_TRUE(core::StatSnapshot::from_string(sparse).same_statistics(
      core::StatSnapshot::from_string(full)));

  // The modes do not cross: a delta is not a patch and vice versa.
  const std::string patch =
      core::encode_sparse_patch(base.to_string(), evolved.to_string());
  EXPECT_THROW(core::expand_sparse_delta(patch), std::runtime_error);
  EXPECT_THROW(core::apply_sparse_patch(base.to_string(), sparse),
               std::runtime_error);
}

TEST(SparseTransport, EveryPatchTruncationIsRejected) {
  const auto [base, evolved] = patch_pair();
  const std::string base_full = base.to_string();
  const std::string patch =
      core::encode_sparse_patch(base_full, evolved.to_string());
  for (std::size_t len = 0; len < patch.size(); ++len) {
    EXPECT_THROW(core::apply_sparse_patch(
                     base_full, std::string_view(patch).substr(0, len)),
                 std::runtime_error)
        << "truncation at byte " << len << " applied successfully";
  }
  const std::string sparse =
      core::encode_sparse_delta(evolved.diff(base));
  for (std::size_t len = 0; len < sparse.size(); ++len) {
    EXPECT_THROW(core::expand_sparse_delta(
                     std::string_view(sparse).substr(0, len)),
                 std::runtime_error)
        << "truncation at byte " << len << " expanded successfully";
  }
}

TEST(SparseTransport, EveryPatchByteFlipIsRejectedOrStructurallySound) {
  // Flip every byte in turn.  Flips in the magic, version, mode, counts,
  // lengths, checksums, or chunk bodies must be rejected outright.  Flips
  // inside the epoch array are data, not structure — they cannot be told
  // from a legitimate epoch, so the *soundness* contract is that the splice
  // still yields a payload the full decoder accepts (never an out-of-bounds
  // splice, a torn chunk, or partial state).
  const auto [base, evolved] = patch_pair();
  const std::string base_full = base.to_string();
  const std::string patch =
      core::encode_sparse_patch(base_full, evolved.to_string());
  int accepted = 0;
  for (std::size_t at = 0; at < patch.size(); ++at) {
    std::string corrupt = patch;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0xFF);
    try {
      const std::string spliced = core::apply_sparse_patch(base_full, corrupt);
      ++accepted;
      EXPECT_NO_THROW(core::StatSnapshot::from_string(spliced))
          << "flip at byte " << at << " produced a torn full payload";
    } catch (const std::runtime_error&) {
      // rejected — the common case
    }
  }
  // Only epoch-array flips (2 ranks x 8 bytes) can possibly be accepted.
  EXPECT_LE(accepted, 16);
}

TEST(SparseTransport, ForgedRankIndicesAreRejected) {
  // Duplicate, descending, and out-of-range dirty indices — each with a
  // perfectly valid chunk behind it, so only the index check can object.
  EXPECT_THROW(core::expand_sparse_delta(craft_sparse(2, 1, {1, 1})),
               std::runtime_error);
  EXPECT_THROW(core::expand_sparse_delta(craft_sparse(2, 1, {1, 0})),
               std::runtime_error);
  EXPECT_THROW(core::expand_sparse_delta(craft_sparse(2, 1, {2})),
               std::runtime_error);
  // An unknown mode byte is refused before any chunk is looked at.
  EXPECT_THROW(core::sparse_payload_info(craft_sparse(2, 2, {0})),
               std::runtime_error);
  // Trailing bytes after the final chunk are refused.
  std::string trailing = craft_sparse(2, 1, {0});
  trailing.push_back('\0');
  EXPECT_THROW(core::expand_sparse_delta(trailing), std::runtime_error);
  // The well-formed craft itself expands (the forgeries above failed for
  // their indices, not for the scaffolding).
  EXPECT_NO_THROW(core::expand_sparse_delta(craft_sparse(2, 1, {0, 1})));
  // A patch against a base with a different rank count is refused.
  const std::string base_full = small_snapshot().to_string();
  EXPECT_THROW(core::apply_sparse_patch(base_full, craft_sparse(3, 0, {})),
               std::runtime_error);
}

TEST(DirtyTracking, EveryMutationPathBumpsTheVersion) {
  core::KernelTable t = make_table(4, 1);
  std::uint64_t v = t.version;
  t.merge(make_table(4, 2));
  EXPECT_GT(t.version, v);
  v = t.version;
  t.new_epoch();
  EXPECT_GT(t.version, v);
  v = t.version;
  t.clear_statistics();
  EXPECT_GT(t.version, v);
  v = t.version;
  t.touch();
  EXPECT_EQ(t.version, v + 1);
  // Channel-registry-union growth travels through merge and therefore
  // bumps: a peer that learned a new channel dirties the absorbing table.
  core::KernelTable lhs = make_table(8, 1);
  core::KernelTable rhs = make_table(8, 1);
  rhs.channels.add_channel({0, 2, 4, 6});
  v = lhs.version;
  lhs.merge(rhs);
  EXPECT_GT(lhs.version, v);
  EXPECT_FALSE(lhs.channels.same_channels(make_table(8, 1).channels));
}

TEST(DirtyTracking, VersionIsTransportInvisible) {
  // The counter is a local pre-filter, not state: it never serializes, and
  // equality ignores it.
  core::KernelTable t = make_table(2, 1);
  t.touch();
  t.touch();
  core::StatSnapshot s;
  s.ranks.push_back(t);
  s.ranks.push_back(make_table(2, 2));
  const core::StatSnapshot reloaded =
      core::StatSnapshot::from_string(s.to_string());
  EXPECT_TRUE(reloaded.same_statistics(s));
  // Same bytes regardless of how often the source was touched.
  core::StatSnapshot untouched;
  untouched.ranks.push_back(make_table(2, 1));
  untouched.ranks.push_back(make_table(2, 2));
  EXPECT_EQ(untouched.to_string(), s.to_string());
}
