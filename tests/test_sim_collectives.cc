#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/api.hpp"
#include "sim/engine.hpp"

namespace sim = critter::sim;

namespace {
sim::Machine quiet() { return sim::Machine::noiseless(); }
}  // namespace

class CollectiveRankCounts : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRankCounts, BcastDeliversRootData) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    std::vector<double> buf(8, ctx.rank == 2 % p ? 3.25 : -1.0);
    sim::bcast(buf.data(), 8 * 8, 2 % p, sim::world());
    for (double v : buf) EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST_P(CollectiveRankCounts, AllreduceSumsContributions) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    double x = ctx.rank + 1.0, y = 0.0;
    sim::allreduce(&x, &y, 8, sim::reduce_sum_double(), sim::world());
    EXPECT_DOUBLE_EQ(y, p * (p + 1) / 2.0);
  });
}

TEST_P(CollectiveRankCounts, ReduceMaxAtRootOnly) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    double x = static_cast<double>(ctx.rank), y = -1.0;
    sim::reduce(&x, &y, 8, sim::reduce_max_double(), 0, sim::world());
    if (ctx.rank == 0) EXPECT_DOUBLE_EQ(y, p - 1.0);
    else EXPECT_DOUBLE_EQ(y, -1.0);
  });
}

TEST_P(CollectiveRankCounts, AllgatherConcatenatesInRankOrder) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    std::int64_t mine = 100 + ctx.rank;
    std::vector<std::int64_t> all(p);
    sim::allgather(&mine, 8, all.data(), sim::world());
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], 100 + r);
  });
}

TEST_P(CollectiveRankCounts, GatherScatterRoundTrip) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    const int root = p / 2;
    std::int64_t mine = 7 * ctx.rank + 1;
    std::vector<std::int64_t> gathered(ctx.rank == root ? p : 0);
    sim::gather(&mine, 8, gathered.data(), root, sim::world());
    std::int64_t back = -1;
    sim::scatter(ctx.rank == root ? gathered.data() : nullptr, 8, &back, root,
                 sim::world());
    EXPECT_EQ(back, mine);
  });
}

TEST_P(CollectiveRankCounts, BarrierSynchronizesClocks) {
  const int p = GetParam();
  sim::Engine e(p, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::advance(static_cast<double>(ctx.rank));  // rank r is r seconds late
    sim::barrier(sim::world());
    EXPECT_GE(sim::now(), p - 1.0);  // everyone leaves after the last arrival
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveRankCounts,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(Collectives, CostMatchesMachineModel) {
  const sim::Machine m = quiet();
  const int p = 8, bytes = 4096;
  sim::Engine e(p, m);
  e.run([&](sim::RankCtx&) {
    std::vector<char> buf(bytes);
    sim::bcast(buf.data(), bytes, 0, sim::world());
    EXPECT_NEAR(sim::now(), m.coll_cost(sim::CollType::Bcast, bytes, p), 1e-15);
  });
}

TEST(Collectives, SplitByParityFormsTwoGroups) {
  sim::Engine e(8, quiet());
  e.run([&](sim::RankCtx& ctx) {
    sim::Comm half = sim::split(sim::world(), ctx.rank % 2, ctx.rank);
    EXPECT_EQ(sim::comm_size(half), 4);
    EXPECT_EQ(sim::comm_rank(half), ctx.rank / 2);
    // Members are the world ranks of my parity class, ascending.
    const auto& mem = sim::engine().comm_members(half);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(mem[i], 2 * i + ctx.rank % 2);
    // Collectives on the sub-communicator work.
    std::int64_t x = ctx.rank, s = 0;
    sim::allreduce(&x, &s, 8, sim::reduce_sum_i64(), half);
    EXPECT_EQ(s, ctx.rank % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7);
  });
}

TEST(Collectives, SplitKeyControlsLocalRankOrder) {
  sim::Engine e(4, quiet());
  e.run([&](sim::RankCtx& ctx) {
    // reverse order by key
    sim::Comm c = sim::split(sim::world(), 0, 100 - ctx.rank);
    EXPECT_EQ(sim::comm_rank(c), 3 - ctx.rank);
  });
}

TEST(Collectives, NestedSplitGrid) {
  // 4x4 grid: row comms and column comms.
  sim::Engine e(16, quiet());
  e.run([&](sim::RankCtx& ctx) {
    const int row = ctx.rank / 4, col = ctx.rank % 4;
    sim::Comm rowc = sim::split(sim::world(), row, col);
    sim::Comm colc = sim::split(sim::world(), col, row);
    EXPECT_EQ(sim::comm_size(rowc), 4);
    EXPECT_EQ(sim::comm_size(colc), 4);
    std::int64_t x = ctx.rank, rs = 0, cs = 0;
    sim::allreduce(&x, &rs, 8, sim::reduce_sum_i64(), rowc);
    sim::allreduce(&x, &cs, 8, sim::reduce_sum_i64(), colc);
    EXPECT_EQ(rs, 4 * (4 * row) + 0 + 1 + 2 + 3);
    EXPECT_EQ(cs, 4 * col + 0 + 4 + 8 + 12);
  });
}

TEST(Collectives, MismatchedTypesThrow) {
  sim::Engine e(2, quiet());
  EXPECT_THROW(e.run([&](sim::RankCtx& ctx) {
    std::int64_t x = 0, y = 0;
    if (ctx.rank == 0)
      sim::allreduce(&x, &y, 8, sim::reduce_sum_i64(), sim::world());
    else
      sim::barrier(sim::world());
  }),
               std::runtime_error);
}

TEST(Collectives, MismatchedBytesThrow) {
  sim::Engine e(2, quiet());
  EXPECT_THROW(e.run([&](sim::RankCtx& ctx) {
    std::vector<char> b(32);
    sim::bcast(b.data(), ctx.rank == 0 ? 16 : 32, 0, sim::world());
  }),
               std::runtime_error);
}

TEST(Collectives, NonblockingAllreduceOverlaps) {
  const sim::Machine m = quiet();
  sim::Engine e(4, m);
  e.run([&](sim::RankCtx&) {
    double x = 1.0, y = 0.0;
    sim::Request r = sim::iallreduce(&x, &y, 8, sim::reduce_sum_double(), sim::world());
    sim::advance(1.0);  // all ranks compute while the allreduce happens
    sim::wait(r);
    EXPECT_DOUBLE_EQ(y, 4.0);
    // completion = max arrival (0) + cost, overlapped by the 1s compute
    EXPECT_DOUBLE_EQ(sim::now(), 1.0);
  });
}

TEST(Collectives, ModelModeNullBuffersMoveNoDataButCost) {
  const sim::Machine m = quiet();
  const int p = 4, bytes = 1 << 16;
  sim::Engine e(p, m);
  e.run([&](sim::RankCtx&) {
    sim::bcast(nullptr, bytes, 0, sim::world());
    EXPECT_NEAR(sim::now(), m.coll_cost(sim::CollType::Bcast, bytes, p), 1e-15);
  });
}

TEST(Collectives, ManySmallCollectivesAccumulateLatency) {
  const sim::Machine m = quiet();
  const int iters = 100;
  sim::Engine e(4, m);
  e.run([&](sim::RankCtx&) {
    for (int i = 0; i < iters; ++i) sim::barrier(sim::world());
    EXPECT_NEAR(sim::now(),
                iters * m.coll_cost(sim::CollType::Barrier, 0, 4), 1e-12);
  });
}
