#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/channel.hpp"

namespace core = critter::core;

namespace {
std::vector<int> lattice(int offset, std::vector<std::pair<int, int>> dims) {
  // dims as (stride, size) pairs
  std::vector<int> out{offset};
  for (auto [s, c] : dims) {
    std::vector<int> next;
    for (int i = 0; i < c; ++i)
      for (int base : out) next.push_back(base + i * s);
    out = std::move(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

TEST(Channel, SingleRank) {
  core::Channel ch = core::channel_from_ranks({5});
  EXPECT_TRUE(ch.lattice);
  EXPECT_EQ(ch.offset, 5);
  EXPECT_EQ(ch.span(), 1);
}

TEST(Channel, ContiguousRange) {
  core::Channel ch = core::channel_from_ranks({4, 5, 6, 7});
  ASSERT_TRUE(ch.lattice);
  ASSERT_EQ(ch.dims.size(), 1u);
  EXPECT_EQ(ch.dims[0].stride, 1);
  EXPECT_EQ(ch.dims[0].size, 4);
  EXPECT_EQ(ch.offset, 4);
}

TEST(Channel, StridedColumn) {
  core::Channel ch = core::channel_from_ranks({2, 6, 10, 14});
  ASSERT_TRUE(ch.lattice);
  ASSERT_EQ(ch.dims.size(), 1u);
  EXPECT_EQ(ch.dims[0].stride, 4);
  EXPECT_EQ(ch.dims[0].size, 4);
}

TEST(Channel, TwoDimensionalLattice) {
  // {0,1,2} x {0,16,32}: a 3x3 slab of a 16-wide grid
  auto ranks = lattice(0, {{1, 3}, {16, 3}});
  core::Channel ch = core::channel_from_ranks(ranks);
  ASSERT_TRUE(ch.lattice);
  ASSERT_EQ(ch.dims.size(), 2u);
  EXPECT_EQ(ch.dims[0].stride, 1);
  EXPECT_EQ(ch.dims[0].size, 3);
  EXPECT_EQ(ch.dims[1].stride, 16);
  EXPECT_EQ(ch.dims[1].size, 3);
}

TEST(Channel, HashIgnoresOffset) {
  core::Channel a = core::channel_from_ranks({0, 4, 8});
  core::Channel b = core::channel_from_ranks({3, 7, 11});
  EXPECT_NE(a.offset, b.offset);
  EXPECT_EQ(a.hash(), b.hash());  // same (stride,size): same signature
}

TEST(Channel, HashSeparatesShapes) {
  core::Channel a = core::channel_from_ranks({0, 1, 2, 3});
  core::Channel b = core::channel_from_ranks({0, 2, 4, 6});
  core::Channel c = core::channel_from_ranks({0, 1, 2});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Channel, NonLatticeDetected) {
  core::Channel ch = core::channel_from_ranks({0, 1, 5});
  EXPECT_FALSE(ch.lattice);
  core::Channel ch2 = core::channel_from_ranks({0, 1, 2, 5});
  EXPECT_FALSE(ch2.lattice);
}

class LatticeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(LatticeRoundTrip, FactorizationRecoversRankSet) {
  auto [offset, s1, c1, s2, c2] = GetParam();
  auto ranks = lattice(offset, {{s1, c1}, {s2, c2}});
  core::Channel ch = core::channel_from_ranks(ranks);
  ASSERT_TRUE(ch.lattice);
  EXPECT_EQ(ch.span(), static_cast<std::int64_t>(ranks.size()));
  auto rebuilt = ch.world_ranks();
  ASSERT_EQ(rebuilt.size(), ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    EXPECT_EQ(rebuilt[i], ranks[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Lattices, LatticeRoundTrip,
    ::testing::Values(std::tuple{0, 1, 4, 4, 4},    // 4x4 grid
                      std::tuple{3, 1, 2, 8, 2},    // offset slab
                      std::tuple{0, 2, 3, 12, 2},   // strided x strided
                      std::tuple{0, 1, 8, 8, 8},    // 8x8
                      std::tuple{16, 4, 4, 16, 1},  // single column
                      std::tuple{0, 1, 64, 64, 1},  // flat range
                      std::tuple{5, 3, 2, 6, 4}));  // dense stacking

TEST(CombineChannels, RowAndColumnCombine) {
  // 4x4 grid: row {0,1,2,3} and column {0,4,8,12}
  core::Channel row = core::channel_from_ranks({0, 1, 2, 3});
  core::Channel col = core::channel_from_ranks({0, 4, 8, 12});
  core::Channel out;
  ASSERT_TRUE(core::combine_channels(row, col, &out));
  EXPECT_EQ(out.span(), 16);
  ASSERT_EQ(out.dims.size(), 2u);
  EXPECT_EQ(out.dims[0].stride, 1);
  EXPECT_EQ(out.dims[1].stride, 4);
}

TEST(CombineChannels, OverlappingStridesRejected) {
  core::Channel a = core::channel_from_ranks({0, 1, 2, 3});
  core::Channel b = core::channel_from_ranks({0, 1});
  EXPECT_FALSE(core::combine_channels(a, b, nullptr));
}

TEST(CombineChannels, NonAdjacentStridesRejected) {
  // {0,1} (covers stride 1..2) and {0,8}: gap between 2 and 8 means their
  // union is not a full lattice of 4 ranks with strides 1 and 8... it is a
  // valid sparse lattice actually, so it must combine (8 >= 1*2).
  core::Channel a = core::channel_from_ranks({0, 1});
  core::Channel b = core::channel_from_ranks({0, 8});
  core::Channel out;
  EXPECT_TRUE(core::combine_channels(a, b, &out));
  EXPECT_EQ(out.span(), 4);
  // But overlapping coverage is rejected: {0..3} and {0,2}
  core::Channel c = core::channel_from_ranks({0, 1, 2, 3});
  core::Channel d = core::channel_from_ranks({0, 2});
  EXPECT_FALSE(core::combine_channels(c, d, nullptr));
}

TEST(Registry, WorldCoverage) {
  core::ChannelRegistry reg;
  const std::uint64_t wh = reg.init_world(16);
  EXPECT_TRUE(reg.covers_world(wh));
  EXPECT_EQ(reg.world_span(), 16);
}

TEST(Registry, RowPlusColumnCoversWorld) {
  // 4x4 grid on 16 ranks: registering a row channel and a column channel
  // must produce an aggregate that covers the world (the eager policy's
  // propagation-complete condition).
  core::ChannelRegistry reg;
  reg.init_world(16);
  const std::uint64_t row = reg.add_channel({0, 1, 2, 3});
  const std::uint64_t col = reg.add_channel({0, 4, 8, 12});
  std::uint64_t cov = 0;
  ASSERT_TRUE(reg.try_extend_coverage(0, row, &cov));
  EXPECT_EQ(cov, row);
  ASSERT_TRUE(reg.try_extend_coverage(cov, col, &cov));
  EXPECT_TRUE(reg.covers_world(cov));
}

TEST(Registry, ThreeDimensionalGridCoverage) {
  // 2x2x2 grid on 8 ranks: fibers along each dimension.
  core::ChannelRegistry reg;
  reg.init_world(8);
  const std::uint64_t x = reg.add_channel({0, 1});
  const std::uint64_t y = reg.add_channel({0, 2});
  const std::uint64_t z = reg.add_channel({0, 4});
  std::uint64_t cov = 0;
  ASSERT_TRUE(reg.try_extend_coverage(0, x, &cov));
  ASSERT_TRUE(reg.try_extend_coverage(cov, y, &cov));
  EXPECT_FALSE(reg.covers_world(cov));  // xy plane only
  ASSERT_TRUE(reg.try_extend_coverage(cov, z, &cov));
  EXPECT_TRUE(reg.covers_world(cov));
}

TEST(Registry, SameChannelCannotExtendItself) {
  core::ChannelRegistry reg;
  reg.init_world(16);
  const std::uint64_t row = reg.add_channel({0, 1, 2, 3});
  std::uint64_t cov = 0;
  ASSERT_TRUE(reg.try_extend_coverage(0, row, &cov));
  EXPECT_FALSE(reg.try_extend_coverage(cov, row, &cov));
}

TEST(Registry, OffsetInstancesShareChannel) {
  // every row of the 4x4 grid hashes identically
  core::ChannelRegistry reg;
  reg.init_world(16);
  const std::uint64_t r0 = reg.add_channel({0, 1, 2, 3});
  const std::uint64_t r1 = reg.add_channel({4, 5, 6, 7});
  const std::uint64_t r3 = reg.add_channel({12, 13, 14, 15});
  EXPECT_EQ(r0, r1);
  EXPECT_EQ(r0, r3);
}
