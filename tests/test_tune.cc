// Autotuning harness: config-space structure, tuner protocol, and the
// paper's qualitative claims at small scale.
#include <gtest/gtest.h>

#include "tune/tuner.hpp"

namespace tune = critter::tune;
using critter::Policy;

TEST(ConfigSpaces, SizesMatchPaper) {
  EXPECT_EQ(tune::capital_cholesky_study(false).configs.size(), 15u);
  EXPECT_EQ(tune::slate_cholesky_study(false).configs.size(), 20u);
  EXPECT_EQ(tune::candmc_qr_study(false).configs.size(), 15u);
  EXPECT_EQ(tune::slate_qr_study(false).configs.size(), 63u);
}

TEST(ConfigSpaces, CapitalFormula) {
  auto s = tune::capital_cholesky_study(false);
  EXPECT_EQ(s.configs[0].at("b"), 24);
  EXPECT_EQ(s.configs[4].at("b"), 24 << 4);
  EXPECT_EQ(s.configs[0].at("strat"), 1);
  EXPECT_EQ(s.configs[5].at("strat"), 2);
  EXPECT_EQ(s.configs[14].at("strat"), 3);
}

TEST(ConfigSpaces, PaperScaleMatchesPaperText) {
  auto cap = tune::capital_cholesky_study(true);
  EXPECT_EQ(cap.nranks, 512);
  EXPECT_EQ(cap.n, 16384);
  EXPECT_EQ(cap.configs[1].at("b"), 256);
  auto cq = tune::candmc_qr_study(true);
  EXPECT_EQ(cq.nranks, 4096);
  EXPECT_EQ(cq.configs[5].at("pr"), 128);
  EXPECT_EQ(cq.configs[5].at("pc"), 32);
  auto sq = tune::slate_qr_study(true);
  EXPECT_EQ(sq.configs.size(), 63u);
  EXPECT_EQ(sq.configs[0].at("w"), 8);
  EXPECT_EQ(sq.configs[2].at("w"), 32);
  EXPECT_EQ(sq.configs[21].at("pr"), 32);
}

TEST(ConfigSpaces, GridShapesAreValid) {
  for (bool paper : {false}) {
    for (auto study : {tune::candmc_qr_study(paper), tune::slate_qr_study(paper)})
      for (const auto& c : study.configs) {
        EXPECT_EQ(c.at("pr") * c.at("pc"), study.nranks)
            << study.name << " cfg " << c.index;
      }
  }
}

TEST(Tuner, MeasureConfigProducesBspProfile) {
  auto study = tune::capital_cholesky_study(false);
  critter::Report r = tune::measure_config(study, study.configs[2]);
  EXPECT_GT(r.critical.exec_time, 0.0);
  EXPECT_GT(r.critical.sync_cost, 0.0);
  EXPECT_GT(r.critical.comm_cost, 0.0);
  EXPECT_GT(r.volavg.comp_cost, 0.0);
  EXPECT_LE(r.volavg.comp_cost, r.critical.comp_cost);
}

TEST(Tuner, LooseToleranceTunesFasterThanTight) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(5);  // keep the test quick
  tune::TuneOptions loose, tight;
  loose.policy = tight.policy = Policy::ConditionalExecution;
  loose.tolerance = 0.5;
  tight.tolerance = 1.0 / 1024.0;
  loose.samples = tight.samples = 2;
  auto rl = tune::run_study(study, loose);
  auto rt = tune::run_study(study, tight);
  EXPECT_LT(rl.tuning_time, rt.tuning_time);
  // and the tight run predicts better (or at least as well)
  EXPECT_LE(rt.mean_err(), rl.mean_err() * 1.5 + 0.02);
}

TEST(Tuner, SelectiveTuningBeatsFullExecution) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(6);
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 2;
  auto r = tune::run_study(study, opt);
  EXPECT_LT(r.tuning_time, r.full_time)
      << "selective execution should accelerate the search";
  EXPECT_LT(r.mean_err(), 0.15);
  std::int64_t skipped = 0;
  for (const auto& c : r.per_config) skipped += c.skipped;
  EXPECT_GT(skipped, 0);
}

TEST(Tuner, PredictionSelectsNearOptimalConfig) {
  auto study = tune::capital_cholesky_study(false);
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.tolerance = 0.25;
  opt.samples = 2;
  auto r = tune::run_study(study, opt);
  // paper: chosen config achieves >= 99% of the optimum; we allow 95%
  // at reduced scale/noise.
  EXPECT_GT(r.selection_quality(), 0.95);
}

TEST(Tuner, AprioriChargesOfflinePass) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(3);
  tune::TuneOptions ap, cond;
  ap.policy = Policy::AprioriPropagation;
  cond.policy = Policy::ConditionalExecution;
  ap.tolerance = cond.tolerance = 0.25;
  ap.samples = cond.samples = 1;
  auto ra = tune::run_study(study, ap);
  auto rc = tune::run_study(study, cond);
  // the offline full pass makes apriori slower than conditional here
  EXPECT_GT(ra.tuning_time, rc.tuning_time * 0.9);
}

TEST(Tuner, SlateCholeskyRuns) {
  auto study = tune::slate_cholesky_study(false);
  study.configs = {study.configs[0], study.configs[1], study.configs[19]};
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 1;
  opt.reset_per_config = true;
  auto r = tune::run_study(study, opt);
  EXPECT_EQ(r.per_config.size(), 3u);
  for (const auto& c : r.per_config) EXPECT_GT(c.true_time, 0.0);
}

TEST(Tuner, CandmcQrRuns) {
  auto study = tune::candmc_qr_study(false);
  study.configs = {study.configs[2], study.configs[7], study.configs[12]};
  tune::TuneOptions opt;
  opt.policy = Policy::LocalPropagation;
  opt.tolerance = 0.25;
  opt.samples = 1;
  opt.reset_per_config = true;
  auto r = tune::run_study(study, opt);
  for (const auto& c : r.per_config) {
    EXPECT_GT(c.true_time, 0.0);
    EXPECT_GT(c.pred_time, 0.0);
  }
}

TEST(Tuner, SlateQrRuns) {
  auto study = tune::slate_qr_study(false);
  study.configs = {study.configs[0], study.configs[31], study.configs[62]};
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.tolerance = 0.25;
  opt.samples = 1;
  opt.reset_per_config = true;
  auto r = tune::run_study(study, opt);
  for (const auto& c : r.per_config) EXPECT_GT(c.true_time, 0.0);
}

TEST(Tuner, EagerReusesModelsAcrossConfigs) {
  auto study = tune::capital_cholesky_study(false);
  study.configs.resize(6);
  tune::TuneOptions eager, cond;
  eager.policy = Policy::EagerPropagation;
  cond.policy = Policy::ConditionalExecution;
  eager.tolerance = cond.tolerance = 0.5;
  eager.samples = cond.samples = 2;
  auto re = tune::run_study(study, eager);
  auto rc = tune::run_study(study, cond);
  EXPECT_LT(re.tuning_time, rc.tuning_time)
      << "eager propagation should beat conditional execution at loose "
         "tolerances (paper Fig. 4a)";
}
