// CANDMC pipelined 2D QR: distributed numerics via the augmented-matrix
// check, TSQR vs CholeskyQR2 panels, pipelining behaviour in model mode.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "candmc/qr2d.hpp"
#include "core/profiler.hpp"
#include "la/matrix.hpp"
#include "sim/api.hpp"

namespace sim = critter::sim;
namespace sl = critter::slate;
namespace cd = critter::candmc;
namespace la = critter::la;
using critter::Config;
using critter::ExecMode;
using critter::Report;
using critter::Store;

namespace {

template <typename Body>
Report run_spmd(int p, bool real, Body body) {
  Config cfg;
  cfg.mode = real ? ExecMode::Real : ExecMode::Model;
  cfg.selective = false;
  Store store(p, cfg);
  sim::Engine eng(p, sim::Machine::knl_like());
  Report rep;
  eng.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    body(ctx);
    Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

/// Factor [A | A]; returns the relative mismatch between the left-half R
/// and the right-half Q^T A plus the R-norm ratio.
std::pair<double, double> augmented_qr_error(int pr, int pc, int m, int n,
                                             int nb, cd::PanelKind kind,
                                             int lookahead) {
  double err = 1e300, norm_ratio = 0.0;
  run_spmd(pr * pc, true, [&](sim::RankCtx& ctx) {
    sl::Grid2D g = sl::Grid2D::build(pr, pc);
    sl::TileMatrix a(m, 2 * n, nb, g, true);
    la::Matrix base = la::random_matrix(m, n, 77);
    la::Matrix aug(m, 2 * n);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) {
        aug(i, j) = base(i, j);
        aug(i, n + j) = base(i, j);
      }
    a.scatter_from_full(aug);
    cd::QrConfig qcfg;
    qcfg.panel = kind;
    qcfg.lookahead = lookahead;
    qcfg.max_panels = (n + nb - 1) / nb;
    cd::qr2d(a, qcfg);
    la::Matrix out = a.gather_full();
    if (ctx.rank == 0) {
      double e = 0.0, rn = 0.0;
      for (int j = 0; j < n; ++j)
        for (int i = 0; i <= j; ++i) {
          const double d = out(i, j) - out(i, n + j);
          e += d * d;
          rn += out(i, j) * out(i, j);
        }
      err = std::sqrt(e) / (1.0 + la::frob_norm(m, n, base.data(), m));
      norm_ratio = std::sqrt(rn) / la::frob_norm(m, n, base.data(), m);
    }
  });
  return {err, norm_ratio};
}

}  // namespace

class CandmcReal
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int, cd::PanelKind, int>> {};

TEST_P(CandmcReal, AugmentedColumnsMatchR) {
  auto [pr, pc, m, n, nb, kind, la_depth] = GetParam();
  auto [err, ratio] = augmented_qr_error(pr, pc, m, n, nb, kind, la_depth);
  EXPECT_LT(err, 1e-9);
  EXPECT_NEAR(ratio, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CandmcReal,
    ::testing::Values(
        std::tuple{1, 1, 32, 16, 8, cd::PanelKind::Tsqr, 0},
        std::tuple{2, 2, 32, 16, 8, cd::PanelKind::Tsqr, 0},
        std::tuple{2, 2, 32, 16, 8, cd::PanelKind::Tsqr, 1},
        std::tuple{4, 1, 64, 16, 8, cd::PanelKind::Tsqr, 1},  // tall grid tree
        std::tuple{4, 2, 64, 16, 8, cd::PanelKind::Tsqr, 1},
        std::tuple{2, 2, 32, 16, 8, cd::PanelKind::CholeskyQr2, 0},
        std::tuple{4, 2, 64, 16, 8, cd::PanelKind::CholeskyQr2, 1},
        std::tuple{2, 4, 48, 24, 8, cd::PanelKind::Tsqr, 1}));

TEST(CandmcModel, PipeliningShortensSchedule) {
  auto wall = [&](int depth) {
    Report r = run_spmd(16, false, [&](sim::RankCtx&) {
      sl::Grid2D g = sl::Grid2D::build(8, 2);
      sl::TileMatrix a(8192, 1024, 64, g, false);
      cd::QrConfig q;
      q.lookahead = depth;
      cd::qr2d(a, q);
    });
    return r.wall_time;
  };
  EXPECT_LT(wall(1), wall(0));
}

TEST(CandmcModel, GridShapeTradesRowsForColumns) {
  // Paper Fig. 3c: pr x pc shape shifts cost between the mn/pr and n^2/pc
  // communication terms.
  auto comm = [&](int pr, int pc) {
    Report r = run_spmd(pr * pc, false, [&](sim::RankCtx&) {
      sl::Grid2D g = sl::Grid2D::build(pr, pc);
      sl::TileMatrix a(16384, 1024, 64, g, false);
      cd::qr2d(a, cd::QrConfig{});
    });
    return r.critical.comm_cost;
  };
  const double tall = comm(16, 1);
  const double square = comm(4, 4);
  EXPECT_NE(tall, square);
  // For a very tall matrix the tall grid should reduce communication of
  // the dominant mn/pr term.
  EXPECT_LT(tall, square * 4.0);
}

TEST(CandmcModel, KernelProfileMatchesPaper) {
  Config cfg;
  cfg.mode = ExecMode::Model;
  cfg.selective = false;
  Store store(8, cfg);
  sim::Engine eng(8, sim::Machine::knl_like());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    sl::Grid2D g = sl::Grid2D::build(4, 2);
    sl::TileMatrix a(2048, 512, 64, g, false);
    cd::qr2d(a, cd::QrConfig{});
    (void)critter::stop();
  });
  using critter::core::KernelClass;
  bool has[32] = {};
  for (const auto& [key, ks] : store.rank(0).table.K) has[static_cast<int>(key.cls)] = true;
  // paper §V-D: CANDMC uses gemm, trsm, geqrf, ormqr, tpqrt/tpmqrt,
  // bcast, allreduce, send, recv
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Gemm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Trsm)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Geqrf)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Ormqr)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Tpqrt)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Tpmqrt)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Getrf)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Bcast)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Allreduce)]);
  EXPECT_TRUE(has[static_cast<int>(KernelClass::Recv)]);
}
