// The surrogate-model subsystem: regression/copula surrogates, acquisition
// functions, the "surrogate-ei" and "copula-transfer" strategies, prior
// ingestion (files, in-memory snapshots, warm starts), and the §9
// determinism contract (refits are pure functions of seed + tell order).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/signature.hpp"
#include "core/stat_store.hpp"
#include "model/acquisition.hpp"
#include "model/copula.hpp"
#include "model/regression.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace model = critter::model;
namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study subset(tune::Study study, int nconfigs) {
  if (nconfigs < static_cast<int>(study.configs.size()))
    study.configs.resize(nconfigs);
  return study;
}

/// Statistically isolated options: per-configuration outcomes are pure
/// functions of (config, salt), independent of evaluation order — so a
/// model-guided sweep's outcomes are comparable to the exhaustive sweep's.
tune::TuneOptions isolated_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.samples = 1;
  opt.reset_per_config = true;
  return opt;
}

/// Drive a session with an external synthetic objective: tell order and
/// proposal sequence become fully observable without any simulation cost.
std::vector<std::vector<int>> drive_external(
    const tune::Study& study, const tune::TuneOptions& opt,
    double (*objective)(const tune::Configuration&)) {
  tune::Tuner session(study, opt);
  std::vector<std::vector<int>> batches;
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    batches.push_back(batch);
    std::vector<tune::ConfigOutcome> outcomes;
    for (int pos : batch) {
      tune::ConfigOutcome oc;
      oc.config = study.configs[pos];
      oc.evaluated = true;
      oc.pred_time = objective(oc.config);
      oc.true_time = oc.pred_time;
      oc.samples_used = 1;
      outcomes.push_back(oc);
    }
    session.tell(outcomes);
  }
  return batches;
}

/// A one-rank snapshot with hand-chosen kernel moments.
core::StatSnapshot toy_snapshot() {
  core::StatSnapshot snap;
  snap.ranks.resize(1);
  core::KernelTable& t = snap.ranks[0];
  const auto put = [&](core::KernelClass cls, std::int64_t d0, double mean,
                       std::int64_t n) {
    core::KernelKey key(cls, {d0, d0, d0, 0}, 0);
    core::KernelStats ks;
    ks.n = n;
    ks.mean = mean;
    t.K[key] = ks;
  };
  // Small kernels cheap, large kernels expensive: the prior should order
  // small parameter values first.
  put(core::KernelClass::Gemm, 24, 1e-4, 16);
  put(core::KernelClass::Potrf, 24, 2e-4, 8);
  put(core::KernelClass::Gemm, 96, 4e-3, 16);
  put(core::KernelClass::Potrf, 96, 8e-3, 8);
  return snap;
}

}  // namespace

// ---------------------------------------------------------------------------
// stat_store moment extraction
// ---------------------------------------------------------------------------

TEST(ExtractMoments, PoolsRanksAndSortsByKeyHash) {
  core::StatSnapshot snap;
  snap.ranks.resize(2);
  const core::KernelKey key(core::KernelClass::Gemm, {8, 8, 8, 0}, 0);
  core::KernelStats a;
  a.add_sample(1.0);
  a.add_sample(3.0);
  core::KernelStats b;
  b.add_sample(5.0);
  snap.ranks[0].K[key] = a;
  snap.ranks[1].K[key] = b;
  // A second key on rank 1 only; zero-sample kernels are omitted.
  const core::KernelKey other(core::KernelClass::Potrf, {4, 4, 4, 0}, 0);
  core::KernelStats c;
  c.add_sample(2.0);
  snap.ranks[1].K[other] = c;
  snap.ranks[0].K[core::KernelKey(core::KernelClass::Trsm, {2, 2, 2, 0}, 0)] =
      core::KernelStats{};

  const std::vector<core::KernelMoments> m = core::extract_moments(snap);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_LT(m[0].key.hash(), m[1].key.hash());
  for (const core::KernelMoments& km : m) {
    if (km.key == key) {
      EXPECT_EQ(km.n, 3);
      EXPECT_DOUBLE_EQ(km.mean, 3.0);
      EXPECT_DOUBLE_EQ(km.variance, 4.0);  // {1,3,5}: sample variance 4
    } else {
      EXPECT_EQ(km.key, other);
      EXPECT_EQ(km.n, 1);
      EXPECT_DOUBLE_EQ(km.mean, 2.0);
      EXPECT_DOUBLE_EQ(km.variance, 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Acquisition functions
// ---------------------------------------------------------------------------

TEST(Acquisition, ExpectedImprovementAndLcbShapes) {
  // Better mean, same spread: more improvement expected.
  EXPECT_GT(model::expected_improvement({1.0, 0.5}, 2.0),
            model::expected_improvement({1.5, 0.5}, 2.0));
  // Same mean, more spread: more improvement expected (exploration).
  EXPECT_GT(model::expected_improvement({2.0, 1.0}, 2.0),
            model::expected_improvement({2.0, 0.1}, 2.0));
  // Degenerate spread: deterministic improvement.
  EXPECT_DOUBLE_EQ(model::expected_improvement({1.0, 0.0}, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(model::expected_improvement({4.0, 0.0}, 3.0), 0.0);
  EXPECT_GE(model::expected_improvement({10.0, 1.0}, 0.0), 0.0);
  // LCB score prefers the optimistic candidate.
  EXPECT_GT(model::lower_confidence_bound_score({1.0, 1.0}, 1.96),
            model::lower_confidence_bound_score({1.5, 1.0}, 1.96));
  EXPECT_GT(model::lower_confidence_bound_score({1.0, 2.0}, 1.96),
            model::lower_confidence_bound_score({1.0, 1.0}, 1.96));
  // The probit and CDF invert each other where the CI machinery uses them.
  EXPECT_NEAR(model::normal_cdf(model::normal_quantile(0.8)), 0.8, 1e-4);
  EXPECT_DOUBLE_EQ(model::normal_quantile(0.5), 0.0);
}

TEST(Acquisition, RankingBreaksTiesByConfigurationIndex) {
  // Equal scores: ascending index decides — and the returned batch is in
  // ascending index order regardless of score order.
  const std::vector<int> tied =
      model::rank_by_acquisition({{1.0, 7}, {1.0, 3}, {1.0, 5}}, 2);
  EXPECT_EQ(tied, (std::vector<int>{3, 5}));
  const std::vector<int> mixed = model::rank_by_acquisition(
      {{0.1, 1}, {0.9, 9}, {0.5, 4}, {0.9, 2}}, 3);
  EXPECT_EQ(mixed, (std::vector<int>{2, 4, 9}));
  // k larger than the pool: everything, ascending.
  EXPECT_EQ(model::rank_by_acquisition({{0.0, 2}, {1.0, 0}}, 10),
            (std::vector<int>{0, 2}));
}

// ---------------------------------------------------------------------------
// Regression surrogate
// ---------------------------------------------------------------------------

TEST(RegressionSurrogate, RecoversAdditiveQuadraticAndIsDeterministic) {
  const auto space = tune::ParamSpace::cartesian(
      {{"x", {0, 1, 2, 3, 4}}, {"y", {0, 10, 20}}});
  const std::vector<tune::Configuration> configs = space.enumerate();
  const auto f = [](const tune::Configuration& c) {
    const double x = static_cast<double>(c.at("x"));
    const double y = static_cast<double>(c.at("y")) / 10.0;
    return (x - 2.0) * (x - 2.0) + 0.5 * y + 3.0;
  };
  model::AdditiveRegressionSurrogate a(configs), b(configs);
  for (const tune::Configuration& c : configs) {
    a.observe(c, f(c));
    b.observe(c, f(c));
  }
  a.refit();
  b.refit();
  for (const tune::Configuration& c : configs) {
    const model::Prediction pa = a.predict(c);
    // Same observations in the same order: bitwise-identical refits.
    EXPECT_EQ(pa.mean, b.predict(c).mean) << c.label();
    EXPECT_EQ(pa.stddev, b.predict(c).stddev) << c.label();
    // The additive quadratic is exactly representable.
    EXPECT_NEAR(pa.mean, f(c), 1e-6) << c.label();
  }
}

// ---------------------------------------------------------------------------
// Copula surrogate
// ---------------------------------------------------------------------------

TEST(CopulaSurrogate, MarginalsMatchHandComputedRanksOn3DimToySpace) {
  // 4 points of a 3-dimensional space, distinct runtimes, one value shared
  // per dimension — every normal score is hand-computable from the ranks.
  const auto space = tune::ParamSpace::enumerated(
      {"a", "b", "c"},
      {{1, 10, 100}, {2, 10, 200}, {1, 20, 200}, {2, 20, 100}});
  const std::vector<tune::Configuration> configs = space.enumerate();
  model::GaussianCopulaSurrogate m(configs);
  // Runtimes rank the points as 1 < 0 < 3 < 2 (ranks 0..3 of y).
  const double ys[] = {0.4, 0.1, 0.9, 0.6};
  for (int i = 0; i < 4; ++i) m.observe(configs[i], ys[i]);
  m.refit();
  // Mid-rank normal scores z_r = Phi^-1((r + 0.5) / 4).
  const double z0 = model::normal_quantile(0.125);  // rank 0
  const double z1 = model::normal_quantile(0.375);
  const double z2 = model::normal_quantile(0.625);
  const double z3 = model::normal_quantile(0.875);
  // dim "a": value 1 -> points {0, 2} (ranks 1, 3); value 2 -> {1, 3}.
  EXPECT_DOUBLE_EQ(m.marginal_z(0, 1), 0.5 * (z1 + z3));
  EXPECT_DOUBLE_EQ(m.marginal_z(0, 2), 0.5 * (z0 + z2));
  // dim "b": value 10 -> points {0, 1} (ranks 1, 0).
  EXPECT_DOUBLE_EQ(m.marginal_z(1, 10), 0.5 * (z1 + z0));
  EXPECT_DOUBLE_EQ(m.marginal_z(1, 20), 0.5 * (z3 + z2));
  // dim "c": value 100 -> points {0, 3} (ranks 1, 2).
  EXPECT_DOUBLE_EQ(m.marginal_z(2, 100), 0.5 * (z1 + z2));
  EXPECT_DOUBLE_EQ(m.marginal_z(2, 200), 0.5 * (z0 + z3));
  // Unobserved values carry no score.
  EXPECT_DOUBLE_EQ(m.marginal_z(0, 77), 0.0);

  // Ties share the mid-rank: two equal runtimes in a fresh model.
  model::GaussianCopulaSurrogate tied(configs);
  tied.observe(configs[0], 0.5);
  tied.observe(configs[1], 0.5);
  tied.observe(configs[2], 0.9);
  tied.refit();
  const double zmid = model::normal_quantile((0.5 + 0.5) / 3.0);
  EXPECT_DOUBLE_EQ(tied.marginal_z(0, 1),
                   0.5 * (zmid + model::normal_quantile(2.5 / 3.0)));
  EXPECT_DOUBLE_EQ(tied.marginal_z(1, 10), zmid);
}

TEST(CopulaSurrogate, PriorMomentsOrderCandidatesCheapestFirst) {
  const auto space =
      tune::ParamSpace::cartesian({{"b", {24, 96}}, {"strat", {1, 2}}});
  const std::vector<tune::Configuration> configs = space.enumerate();
  model::GaussianCopulaSurrogate m(configs);
  EXPECT_FALSE(m.has_prior());
  EXPECT_DOUBLE_EQ(m.prior_score(configs[0]), 0.0);
  m.ingest_prior(toy_snapshot());
  EXPECT_TRUE(m.has_prior());
  // b=24 kernels were cheap in the prior, b=96 expensive.
  EXPECT_LT(m.prior_score(configs[0]), m.prior_score(configs[1]));
  // With no observations the blended score is the standardized prior.
  EXPECT_LT(m.blended_z(configs[0]), m.blended_z(configs[1]));
  // Values the prior never saw read the pooled log-size/log-time line,
  // which the toy prior makes increasing.
  tune::Configuration unseen = configs[1];
  unseen.params[0].second = 4096;
  EXPECT_GT(m.prior_score(unseen), m.prior_score(configs[1]));
  // Ingestion is cumulative and deterministic: the same snapshot twice
  // doubles the weight but keeps the ordering.
  m.ingest_prior(toy_snapshot());
  EXPECT_LT(m.prior_score(configs[0]), m.prior_score(configs[1]));
}

// ---------------------------------------------------------------------------
// "surrogate-ei" strategy
// ---------------------------------------------------------------------------

TEST(SurrogateEi, ProposalsAreDeterministicPerSeedAndTellOrder) {
  const tune::Study study = tune::capital_cholesky_study(false);
  const auto objective = [](const tune::Configuration& c) {
    const double b = static_cast<double>(c.at("b"));
    const double s = static_cast<double>(c.at("strat"));
    return (std::log2(b / 24.0) - 1.0) * (std::log2(b / 24.0) - 1.0) +
           0.05 * s + 1.0;
  };
  tune::TuneOptions opt;
  opt.strategy = "surrogate-ei";
  const std::vector<std::vector<int>> once =
      drive_external(study, opt, objective);
  const std::vector<std::vector<int>> again =
      drive_external(study, opt, objective);
  EXPECT_EQ(once, again);  // identical proposal sequences, batch by batch
  int evaluated = 0;
  for (const std::vector<int>& b : once) evaluated += static_cast<int>(b.size());
  EXPECT_EQ(evaluated, 7);  // default budget: half of 15, floor
}

TEST(SurrogateEi, FindsTheSyntheticOptimumWithinTheBudget) {
  // Objective minimized at b=48 (position-space minimum off the seed grid
  // ends), mild strat preference: the model phase must locate it.
  const tune::Study study = tune::capital_cholesky_study(false);
  const auto objective = [](const tune::Configuration& c) {
    const double b = static_cast<double>(c.at("b"));
    const double s = static_cast<double>(c.at("strat"));
    return (std::log2(b / 48.0)) * (std::log2(b / 48.0)) + 0.05 * s + 1.0;
  };
  tune::TuneOptions opt;
  opt.strategy = "surrogate-ei";
  const std::vector<std::vector<int>> batches =
      drive_external(study, opt, objective);
  // None of the evenly-spaced seeds carries b=48; the model phase must
  // still locate the b-dimension minimum.
  bool hit = false;
  for (const std::vector<int>& b : batches)
    for (int pos : b) hit = hit || study.configs[pos].at("b") == 48;
  EXPECT_TRUE(hit);
}

TEST(SurrogateEi, RespectsCountAndRejectsBadOptions) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 10);
  tune::TuneOptions opt = isolated_options();
  opt.strategy = "surrogate-ei";
  opt.strategy_options["count"] = "3";
  opt.strategy_options["init"] = "2";
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_EQ(r.evaluated_configs, 3);
  EXPECT_EQ(r.strategy, "surrogate-ei");

  opt.strategy_options.clear();
  opt.strategy_options["acq"] = "bogus";
  EXPECT_THROW(tune::run_study(study, opt), std::runtime_error);
  opt.strategy_options.clear();
  opt.strategy_options["degree"] = "7";
  EXPECT_THROW(tune::run_study(study, opt), std::runtime_error);
}

TEST(SurrogateEi, LcbAcquisitionRuns) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions opt = isolated_options();
  opt.strategy = "surrogate-ei";
  opt.strategy_options["acq"] = "lcb";
  opt.strategy_options["count"] = "4";
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_EQ(r.evaluated_configs, 4);
}

// ---------------------------------------------------------------------------
// Acceptance: the paper-study criterion
// ---------------------------------------------------------------------------

TEST(SurrogateEi, ReachesExhaustiveBestOnPaperStudyWithHalfTheEvaluations) {
  // Statistically isolated sweeps make per-configuration outcomes pure
  // functions of (config, salt) — identical between the exhaustive and the
  // model-guided sweep — so "reaches the exhaustive best" is exact index
  // equality, not a tolerance comparison.
  const tune::Study study = tune::capital_cholesky_study(false);
  const tune::TuneOptions base = isolated_options();

  tune::TuneOptions ex = base;
  ex.strategy = "exhaustive";
  const tune::TuneResult full = tune::run_study(study, ex);
  ASSERT_EQ(full.evaluated_configs,
            static_cast<int>(study.configs.size()));

  tune::TuneOptions ei = base;
  ei.strategy = "surrogate-ei";
  const tune::TuneResult r = tune::run_study(study, ei);
  EXPECT_LE(2 * r.evaluated_configs,
            static_cast<int>(study.configs.size()));
  EXPECT_EQ(r.best_predicted(), full.best_predicted());
  EXPECT_EQ(r.per_config[r.best_predicted()].pred_time,
            full.per_config[full.best_predicted()].pred_time);

  // Bit-reproducibility per seed: the whole result, again.
  const tune::TuneResult again = tune::run_study(study, ei);
  ASSERT_EQ(again.per_config.size(), r.per_config.size());
  for (std::size_t i = 0; i < r.per_config.size(); ++i) {
    EXPECT_EQ(r.per_config[i].evaluated, again.per_config[i].evaluated) << i;
    EXPECT_EQ(r.per_config[i].pred_time, again.per_config[i].pred_time) << i;
    EXPECT_EQ(r.per_config[i].true_time, again.per_config[i].true_time) << i;
  }
  EXPECT_EQ(r.tuning_time, again.tuning_time);
}

// ---------------------------------------------------------------------------
// "copula-transfer" strategy: prior plumbing and fallback
// ---------------------------------------------------------------------------

TEST(CopulaTransfer, NoPriorDegradesVisiblyToRandomSubset) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions opt = isolated_options();
  opt.strategy = "copula-transfer";
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_EQ(r.strategy, "random-subset");  // visible degradation
  EXPECT_EQ(r.evaluated_configs, 4);       // at the copula budget, not all

  tune::TuneOptions rs = isolated_options();
  rs.strategy = "random-subset";
  rs.strategy_options["count"] = "4";
  const tune::TuneResult expect = tune::run_study(study, rs);
  for (std::size_t i = 0; i < r.per_config.size(); ++i)
    EXPECT_EQ(r.per_config[i].evaluated, expect.per_config[i].evaluated) << i;

  // A prior with rank tables but no kernel runtime moments (e.g. saved
  // from a reset-per-config sweep) carries nothing to transfer: same
  // visible degradation.
  core::StatSnapshot momentless;
  momentless.ranks.resize(2);
  tune::TuneOptions empty_prior = isolated_options();
  empty_prior.strategy = "copula-transfer";
  empty_prior.prior = &momentless;
  EXPECT_EQ(tune::run_study(study, empty_prior).strategy, "random-subset");
}

TEST(CopulaTransfer, AbsentOrCorruptPriorFileErrorsLikeSnapshotLoad) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 4);
  tune::TuneOptions opt = isolated_options();
  opt.strategy = "copula-transfer";

  // Absent: the exact StatSnapshot::load_file failure, not a silent sweep.
  opt.prior_file = "/nonexistent/prior.snap";
  std::string tuner_err, load_err;
  try {
    tune::run_study(study, opt);
  } catch (const std::exception& e) {
    tuner_err = e.what();
  }
  try {
    core::StatSnapshot::load_file("/nonexistent/prior.snap");
  } catch (const std::exception& e) {
    load_err = e.what();
  }
  ASSERT_FALSE(tuner_err.empty());
  EXPECT_EQ(tuner_err, load_err);

  // Corrupt: same equivalence.
  const std::string bad = ::testing::TempDir() + "corrupt_prior.snap";
  {
    std::ofstream os(bad, std::ios::binary);
    os << "this is not a snapshot";
  }
  opt.prior_file = bad;
  tuner_err.clear();
  load_err.clear();
  try {
    tune::run_study(study, opt);
  } catch (const std::exception& e) {
    tuner_err = e.what();
  }
  try {
    core::StatSnapshot::load_file(bad);
  } catch (const std::exception& e) {
    load_err = e.what();
  }
  ASSERT_FALSE(tuner_err.empty());
  EXPECT_EQ(tuner_err, load_err);
  std::remove(bad.c_str());
}

TEST(CopulaTransfer, PriorFileRoundTripIsDeterministicAndNamed) {
  // Transfer workflow: persistent-statistics sweep -> snapshot file ->
  // copula prior for a fresh sweep of the same space.
  const tune::Study study = subset(tune::capital_cholesky_study(false), 10);
  tune::TuneOptions donor;
  donor.policy = Policy::OnlinePropagation;
  donor.samples = 1;
  const tune::TuneResult prev = tune::run_study(study, donor);
  ASSERT_FALSE(prev.stats.empty());
  const std::string path = ::testing::TempDir() + "model_prior.snap";
  prev.stats.save_file(path);

  tune::TuneOptions opt = isolated_options();
  opt.strategy = "copula-transfer";
  opt.prior_file = path;
  const tune::TuneResult a = tune::run_study(study, opt);
  EXPECT_EQ(a.strategy, "copula-transfer");
  EXPECT_EQ(a.evaluated_configs, 5);

  // An in-memory prior behaves identically to the file.
  tune::TuneOptions mem = opt;
  mem.prior_file.clear();
  mem.prior = &prev.stats;
  const tune::TuneResult b = tune::run_study(study, mem);
  ASSERT_EQ(a.per_config.size(), b.per_config.size());
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].evaluated, b.per_config[i].evaluated) << i;
    EXPECT_EQ(a.per_config[i].pred_time, b.per_config[i].pred_time) << i;
  }
  std::remove(path.c_str());
}

TEST(CopulaTransfer, AdaptOffFreezesOrderingAcrossExchangeDeltas) {
  // adapt=0 promises the prior ordering never shifts: neither from told
  // outcomes nor from mid-sweep exchange deltas (regression: ingest_prior
  // once rebuilt the marginals even with adapt off).
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions donor;
  donor.policy = Policy::OnlinePropagation;
  donor.samples = 1;
  const tune::TuneResult prev = tune::run_study(study, donor);
  ASSERT_FALSE(prev.stats.empty());

  const auto drive = [&](bool merge_mid_sweep) {
    tune::TuneOptions opt = isolated_options();
    opt.strategy = "copula-transfer";
    opt.strategy_options["adapt"] = "0";
    opt.prior = &prev.stats;
    tune::Tuner session(study, opt);
    std::vector<int> order;
    bool merged = false;
    while (!session.done()) {
      const std::vector<int> batch = session.ask();
      if (batch.empty()) break;
      order.insert(order.end(), batch.begin(), batch.end());
      std::vector<tune::ConfigOutcome> outcomes;
      for (int pos : batch) {
        tune::ConfigOutcome oc;
        oc.config = study.configs[pos];
        oc.evaluated = true;
        oc.pred_time = 1.0 + pos;
        oc.true_time = oc.pred_time;
        oc.samples_used = 1;
        outcomes.push_back(oc);
      }
      session.tell(outcomes);
      if (merge_mid_sweep && !merged) {
        session.merge_state(prev.stats);  // an "exchange delta"
        merged = true;
      }
    }
    return order;
  };
  EXPECT_EQ(drive(false), drive(true));
}

TEST(CopulaTransfer, WarmStartDoublesAsThePrior) {
  // With no explicit prior, warm_start feeds both the statistics and the
  // model — the strategy must not degrade to random-subset.
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions donor;
  donor.policy = Policy::OnlinePropagation;
  donor.samples = 1;
  const tune::TuneResult prev = tune::run_study(study, donor);
  ASSERT_FALSE(prev.stats.empty());

  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 1;
  opt.strategy = "copula-transfer";
  opt.warm_start = &prev.stats;
  const tune::TuneResult r = tune::run_study(study, opt);
  EXPECT_EQ(r.strategy, "copula-transfer");
  EXPECT_EQ(r.evaluated_configs, 4);
}
