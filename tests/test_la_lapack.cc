#include <gtest/gtest.h>

#include <vector>

#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/matrix.hpp"

namespace la = critter::la;

class PotrfSizes : public ::testing::TestWithParam<int> {};

TEST_P(PotrfSizes, LowerReconstructsA) {
  const int n = GetParam();
  la::Matrix a = la::random_spd(n, 7);
  la::Matrix l = a;
  ASSERT_EQ(la::potrf(la::Uplo::Lower, n, l.data(), n), 0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < j; ++i) l(i, j) = 0.0;  // zero strict upper
  EXPECT_LT(la::cholesky_residual(a, l), 1e-12);
}

TEST_P(PotrfSizes, UpperMatchesLowerTransposed) {
  const int n = GetParam();
  la::Matrix a = la::random_spd(n, 8);
  la::Matrix lo = a, up = a;
  ASSERT_EQ(la::potrf(la::Uplo::Lower, n, lo.data(), n), 0);
  ASSERT_EQ(la::potrf(la::Uplo::Upper, n, up.data(), n), 0);
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) EXPECT_NEAR(lo(i, j), up(j, i), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfSizes, ::testing::Values(1, 2, 3, 8, 17, 64));

TEST(Potrf, DetectsIndefiniteMatrix) {
  la::Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // not SPD
  a(2, 2) = 1.0;
  EXPECT_EQ(la::potrf(la::Uplo::Lower, 3, a.data(), 3), 2);
}

class TrtriSizes : public ::testing::TestWithParam<int> {};

TEST_P(TrtriSizes, InverseTimesOriginalIsIdentity) {
  const int n = GetParam();
  for (la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper}) {
    la::Matrix a = la::random_matrix(n, n, 9);
    for (int i = 0; i < n; ++i) a(i, i) += n;
    // zero the unused triangle so products stay clean
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        if (uplo == la::Uplo::Lower ? i < j : i > j) a(i, j) = 0.0;
    la::Matrix inv = a;
    ASSERT_EQ(la::trtri(uplo, la::Diag::NonUnit, n, inv.data(), n), 0);
    la::Matrix prod(n, n);
    la::gemm(la::Trans::N, la::Trans::N, n, n, n, 1.0, a.data(), n, inv.data(),
             n, 0.0, prod.data(), n);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrtriSizes, ::testing::Values(1, 2, 5, 16, 33));

TEST(Trtri, UnitDiagVariant) {
  const int n = 6;
  la::Matrix a = la::random_matrix(n, n, 10);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) a(i, j) = (i == j) ? 1.0 : 0.0;
  la::Matrix inv = a;
  ASSERT_EQ(la::trtri(la::Uplo::Lower, la::Diag::Unit, n, inv.data(), n), 0);
  la::Matrix prod(n, n);
  la::gemm(la::Trans::N, la::Trans::N, n, n, n, 1.0, a.data(), n, inv.data(), n,
           0.0, prod.data(), n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

class GetrfSizes : public ::testing::TestWithParam<int> {};

TEST_P(GetrfSizes, SolvesLinearSystems) {
  const int n = GetParam();
  la::Matrix a = la::random_matrix(n, n, 11);
  for (int i = 0; i < n; ++i) a(i, i) += 2.0;
  la::Matrix x = la::random_matrix(n, 3, 12);
  la::Matrix b(n, 3);
  la::gemm(la::Trans::N, la::Trans::N, n, 3, n, 1.0, a.data(), n, x.data(), n,
           0.0, b.data(), n);
  la::Matrix lu = a;
  std::vector<int> ipiv(n);
  ASSERT_EQ(la::getrf(n, n, lu.data(), n, ipiv.data()), 0);
  la::getrs(la::Trans::N, n, 3, lu.data(), n, ipiv.data(), b.data(), n);
  EXPECT_LT(la::frob_diff(b, x), 1e-9);
}

TEST_P(GetrfSizes, SolvesTransposedSystems) {
  const int n = GetParam();
  la::Matrix a = la::random_matrix(n, n, 13);
  for (int i = 0; i < n; ++i) a(i, i) += 2.0;
  la::Matrix x = la::random_matrix(n, 2, 14);
  la::Matrix b(n, 2);
  la::gemm(la::Trans::T, la::Trans::N, n, 2, n, 1.0, a.data(), n, x.data(), n,
           0.0, b.data(), n);
  la::Matrix lu = a;
  std::vector<int> ipiv(n);
  ASSERT_EQ(la::getrf(n, n, lu.data(), n, ipiv.data()), 0);
  la::getrs(la::Trans::T, n, 2, lu.data(), n, ipiv.data(), b.data(), n);
  EXPECT_LT(la::frob_diff(b, x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSizes, ::testing::Values(1, 2, 4, 9, 32));

TEST(Getrf, PivotingHandlesZeroLeadingEntry) {
  la::Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  std::vector<int> ipiv(2);
  EXPECT_EQ(la::getrf(2, 2, a.data(), 2, ipiv.data()), 0);
  EXPECT_EQ(ipiv[0], 1);
}

namespace {

/// Rebuild A from geqrf output and compare.
void check_qr(int m, int n, int nb, std::uint64_t seed) {
  la::Matrix a0 = la::random_matrix(m, n, seed);
  la::Matrix a = a0;
  std::vector<double> tau(std::min(m, n));
  la::geqrf(m, n, a.data(), m, tau.data(), nb);

  // R = upper triangle of a
  la::Matrix r(m, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= std::min(j, m - 1); ++i) r(i, j) = a(i, j);
  // QR = Q * R via ormqr (apply Q to R)
  la::ormqr(la::Side::Left, la::Trans::N, m, n, static_cast<int>(tau.size()),
            a.data(), m, tau.data(), r.data(), m, nb);
  EXPECT_LT(la::frob_diff(r, a0), 1e-11 * (1.0 + la::frob_norm(m, n, a0.data(), m)));
}

}  // namespace

class QrShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(QrShapes, ReconstructsA) {
  auto [m, n, nb] = GetParam();
  check_qr(m, n, nb, 17);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{8, 8, 4},
                                           std::tuple{13, 5, 3},
                                           std::tuple{32, 32, 8},
                                           std::tuple{40, 12, 5},
                                           std::tuple{64, 16, 16}));

TEST(Qr, ExplicitQIsOrthonormal) {
  const int m = 24, n = 10;
  la::Matrix a = la::random_matrix(m, n, 19);
  std::vector<double> tau(n);
  la::geqrf(m, n, a.data(), m, tau.data(), 4);
  la::orgqr(m, n, n, a.data(), m, tau.data(), 4);
  EXPECT_LT(la::orthogonality_error(a), 1e-12);
}

TEST(Qr, QTransposeQIsIdentityViaOrmqr) {
  const int m = 20, n = 6;
  la::Matrix a = la::random_matrix(m, n, 23);
  la::Matrix a0 = a;
  std::vector<double> tau(n);
  la::geqrf(m, n, a.data(), m, tau.data(), 3);
  // Apply Q^T to the original A: should produce R (zero below diagonal).
  la::ormqr(la::Side::Left, la::Trans::T, m, n, n, a.data(), m, tau.data(),
            a0.data(), m, 3);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < m; ++i) EXPECT_NEAR(a0(i, j), 0.0, 1e-11);
}

TEST(Flops, LapackFormulas) {
  EXPECT_NEAR(la::potrf_flops(10), 1000.0 / 3.0, 1e-9);
  EXPECT_GT(la::geqrf_flops(100, 50), la::geqrf_flops(50, 50));
  EXPECT_GT(la::getrf_flops(64, 64), 0.0);
  EXPECT_GT(la::ormqr_flops(la::Side::Left, 32, 8, 8), 0.0);
}
