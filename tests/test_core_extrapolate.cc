// Cross-size kernel-model extrapolation (the paper's §VIII extension).
#include <gtest/gtest.h>

#include <cmath>

#include "core/extrapolate.hpp"
#include "core/kernels.hpp"
#include "core/profiler.hpp"
#include "sim/api.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace sim = critter::sim;

namespace {
core::KernelKey gemm_key(int n) {
  return core::KernelKey{core::KernelClass::Gemm, {n, n, n, 0}, 0};
}
}  // namespace

TEST(SizeModel, FitsPowerLawExactly) {
  // time = 3e-9 * flops^1 — a log-log line with slope 1
  core::SizeModel m;
  for (int n : {8, 16, 32, 64}) {
    const double flops = 2.0 * n * n * n;
    m.observe(gemm_key(n), flops, 3e-9 * flops);
  }
  const double flops48 = 2.0 * 48.0 * 48.0 * 48.0;
  const double pred = m.predict(gemm_key(48), flops48);
  ASSERT_GT(pred, 0.0);
  EXPECT_NEAR(pred, 3e-9 * flops48, 1e-12 + 0.01 * 3e-9 * flops48);
}

TEST(SizeModel, RefusesWithTooFewPoints) {
  core::SizeModel m;
  m.observe(gemm_key(8), 1024, 1e-6);
  m.observe(gemm_key(16), 8192, 8e-6);
  EXPECT_LT(m.predict(gemm_key(32), 65536), 0.0);  // needs >= 3 points
}

TEST(SizeModel, RefusesWithoutSizeSpread) {
  core::SizeModel m;
  for (int i = 0; i < 5; ++i)
    m.observe(gemm_key(16), 8192 + i, 8e-6);  // all ~same size
  EXPECT_LT(m.predict(gemm_key(32), 65536), 0.0);
}

TEST(SizeModel, RefusesPoorFits) {
  core::SizeModel m;
  // wildly inconsistent times: R^2 gate must reject
  m.observe(gemm_key(8), 1e3, 1e-3);
  m.observe(gemm_key(16), 1e4, 1e-9);
  m.observe(gemm_key(32), 1e5, 1e-2);
  m.observe(gemm_key(64), 1e6, 1e-8);
  EXPECT_LT(m.predict(gemm_key(48), 3e5), 0.0);
}

TEST(SizeModel, BucketsSeparateKernelClassesAndFlags) {
  core::SizeModel m;
  core::KernelKey trsm{core::KernelClass::Trsm, {8, 8, 0, 1}, 0};
  for (int n : {8, 16, 32, 64})
    m.observe(gemm_key(n), 2.0 * n * n * n, 1e-9 * n * n * n);
  // gemm bucket trained; trsm bucket untouched
  EXPECT_GT(m.predict(gemm_key(48), 2.0 * 48 * 48 * 48), 0.0);
  EXPECT_LT(m.predict(trsm, 2.0 * 48 * 48 * 48), 0.0);
}

TEST(Extrapolation, SkipsUnseenSizesEndToEnd) {
  // Train on gemm sizes {16,24,32,48,64} until steady, then invoke a fresh
  // size (40): with extrapolation on, it must be skipped outright.
  critter::Config cfg;
  cfg.policy = critter::Policy::ConditionalExecution;
  cfg.tolerance = 0.5;
  cfg.extrapolate = true;
  critter::Store store(1, cfg);
  sim::Machine m = sim::Machine::knl_like();
  m.comp_noise = 0.02;
  sim::Engine eng(1, m);
  std::int64_t extrapolated = 0;
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    for (int it = 0; it < 30; ++it)
      for (int n : {16, 24, 32, 48, 64})
        critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, n, n,
                            n, 1.0, nullptr, n, nullptr, n, 0.0, nullptr, n);
    // fresh size: never executed before
    critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, 40, 40,
                        40, 1.0, nullptr, 40, nullptr, 40, 0.0, nullptr, 40);
    extrapolated = critter::prof().local.extrapolated;
    (void)critter::stop();
  });
  EXPECT_EQ(extrapolated, 1);
  // and the seeded statistics are close to the cost model's mean
  const auto& K = store.rank(0).table.K;
  auto it = K.find(gemm_key(40));
  ASSERT_NE(it, K.end());
  const double model = m.gamma * 2.0 * 40 * 40 * 40 + 5.0e-7;
  EXPECT_NEAR(it->second.mean, model, 0.15 * model);
}

TEST(Extrapolation, OffByDefault) {
  critter::Config cfg;
  cfg.policy = critter::Policy::ConditionalExecution;
  cfg.tolerance = 0.5;
  critter::Store store(1, cfg);
  sim::Engine eng(1, sim::Machine::knl_like());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    for (int it = 0; it < 30; ++it)
      for (int n : {16, 24, 32, 48, 64})
        critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, n, n,
                            n, 1.0, nullptr, n, nullptr, n, 0.0, nullptr, n);
    critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, 40, 40,
                        40, 1.0, nullptr, 40, nullptr, 40, 0.0, nullptr, 40);
    EXPECT_EQ(critter::prof().local.extrapolated, 0);
    (void)critter::stop();
  });
}

TEST(Extrapolation, AcceleratesCandmcTuning) {
  // The paper names CANDMC's shrinking trailing matrix as the beneficiary:
  // each panel spawns fresh gemm signatures that the size model collapses.
  auto study = critter::tune::candmc_qr_study(false);
  study.configs.resize(4);
  critter::tune::TuneOptions base, ext;
  base.policy = ext.policy = critter::Policy::LocalPropagation;
  base.tolerance = ext.tolerance = 0.25;
  base.samples = ext.samples = 2;
  base.reset_per_config = ext.reset_per_config = true;
  ext.extrapolate = true;
  auto rb = critter::tune::run_study(study, base);
  auto re = critter::tune::run_study(study, ext);
  EXPECT_LT(re.tuning_time, rb.tuning_time)
      << "cross-size extrapolation should execute fewer kernels";
  // accuracy must not collapse
  EXPECT_LT(re.mean_err(), rb.mean_err() + 0.05);
}
