// Distributed sweep executors: the in-process/subprocess ShardExecutors,
// the run-directory publish protocol, periodic mid-sweep snapshot
// exchange, and the failure paths (worker crash, stale manifest, missing
// result) — which must surface as actionable errors, never hangs.
//
// This binary is its own shard worker: the subprocess executor re-execs it
// with --shard-worker, so main() routes that entry point before gtest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/executor.hpp"
#include "dist/protocol.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace dist = critter::dist;
namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study subset(tune::Study study, int nconfigs) {
  if (nconfigs < static_cast<int>(study.configs.size()))
    study.configs.resize(nconfigs);
  return study;
}

/// Bitwise equality of everything the fold produces (the determinism and
/// bit-identity contracts are exact, so no tolerances anywhere).
void expect_equal_results(const tune::TuneResult& a, const tune::TuneResult& b,
                          const std::string& what, bool compare_stats = true) {
  ASSERT_EQ(a.per_config.size(), b.per_config.size()) << what;
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].evaluated, b.per_config[i].evaluated)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].true_time, b.per_config[i].true_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].pred_time, b.per_config[i].pred_time)
        << what << " config " << i;
    EXPECT_EQ(a.per_config[i].err, b.per_config[i].err) << what;
    EXPECT_EQ(a.per_config[i].executed, b.per_config[i].executed) << what;
    EXPECT_EQ(a.per_config[i].skipped, b.per_config[i].skipped) << what;
    EXPECT_EQ(a.per_config[i].samples_used, b.per_config[i].samples_used)
        << what;
  }
  EXPECT_EQ(a.tuning_time, b.tuning_time) << what;
  EXPECT_EQ(a.full_time, b.full_time) << what;
  EXPECT_EQ(a.kernel_time, b.kernel_time) << what;
  EXPECT_EQ(a.evaluated_configs, b.evaluated_configs) << what;
  EXPECT_EQ(a.best_predicted(), b.best_predicted()) << what;
  if (compare_stats)
    EXPECT_TRUE(a.stats.same_statistics(b.stats)) << what << " stats";
}

tune::TuneOptions isolated_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::ConditionalExecution;
  opt.samples = 1;
  opt.reset_per_config = true;
  return opt;
}

tune::TuneOptions shared_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 1;
  return opt;
}

/// RAII fault injection for the worker fleet (see dist/subprocess.cc).
struct ScopedShardFault {
  explicit ScopedShardFault(const std::string& spec) {
    ::setenv("CRITTER_SHARD_FAULT", spec.c_str(), 1);
  }
  ~ScopedShardFault() { ::unsetenv("CRITTER_SHARD_FAULT"); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Partition + in-process executor vs the legacy fold
// ---------------------------------------------------------------------------

TEST(Partition, ContiguousBalancedCoverWithEmptyShardsDropped) {
  const std::vector<dist::ShardRange> r = dist::partition_range(2, 10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].begin, 2);
  EXPECT_EQ(r[2].end, 10);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_EQ(r[i].begin, r[i - 1].end);
    EXPECT_EQ(r[i].index, static_cast<int>(i));
  }
  // Over-sharded: empty slices vanish, indices stay dense.
  const std::vector<dist::ShardRange> o = dist::partition_range(0, 2, 5);
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o[0].index, 0);
  EXPECT_EQ(o[1].index, 1);
  EXPECT_THROW(dist::partition_range(0, 4, 0), std::runtime_error);
}

TEST(InProcess, ExchangeOffMatchesLegacyMergeShardsAndUnsharded) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  const tune::TuneOptions opt = isolated_options();
  const tune::TuneResult whole = tune::run_study(study, opt);
  for (int shards : {1, 2, 4}) {
    const tune::TuneResult legacy = tune::merge_shards(study, opt, shards);
    dist::InProcessExecutor exec;
    const tune::TuneResult r = dist::run_sharded(study, opt, shards, exec);
    EXPECT_EQ(r.shards, shards);
    EXPECT_EQ(r.executor, "in-process");
    EXPECT_EQ(r.exchange_rounds, 0);
    // Outcomes are bit-identical to the unsharded sweep; the merged
    // statistics are compared against the legacy fold only (per-shard
    // stores advance fewer epochs than one store sweeping everything).
    expect_equal_results(whole, r,
                         "vs unsharded, shards=" + std::to_string(shards),
                         /*compare_stats=*/false);
    expect_equal_results(legacy, r, "vs legacy fold, shards=" +
                                        std::to_string(shards));
  }
}

TEST(InProcess, ParallelShardsMatchSequentialShards) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  const tune::TuneOptions opt = shared_options();
  dist::InProcessExecutor seq(false);
  dist::InProcessExecutor par(true);
  // Exchange off: shards are independent sweeps, so thread-parallel
  // execution cannot change anything.
  expect_equal_results(dist::run_sharded(study, opt, 3, seq),
                       dist::run_sharded(study, opt, 3, par),
                       "parallel shards, exchange off");
  // Exchange on: all merging happens at the lockstep round barrier in
  // shard order, so scheduling still cannot leak into the result.
  const dist::ExchangePolicy every2{2};
  const tune::TuneResult a = dist::run_sharded(study, opt, 3, seq, every2);
  const tune::TuneResult b = dist::run_sharded(study, opt, 3, par, every2);
  EXPECT_GT(a.exchange_rounds, 0);
  EXPECT_EQ(a.exchange_every, 2);
  expect_equal_results(a, b, "parallel shards, exchange every 2");
}

TEST(InProcess, SingleShardIgnoresExchange) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 4);
  const tune::TuneOptions opt = shared_options();
  dist::InProcessExecutor exec;
  const tune::TuneResult plain = tune::run_study(study, opt);
  const tune::TuneResult r =
      dist::run_sharded(study, opt, 1, exec, dist::ExchangePolicy{1});
  EXPECT_EQ(r.exchange_every, 0);
  EXPECT_EQ(r.exchange_rounds, 0);
  expect_equal_results(plain, r, "one shard");
}

// ---------------------------------------------------------------------------
// Subprocess executor: bit-identity, exchange determinism
// ---------------------------------------------------------------------------

TEST(Subprocess, ExchangeOffBitIdenticalToInProcessFoldFor124Shards) {
  // The acceptance contract: one worker process per shard, snapshots
  // through files, must reproduce the in-process fold bit-exactly when no
  // mid-sweep exchange happens — for isolated and shared statistics both.
  const tune::Study iso_study = subset(tune::capital_cholesky_study(false), 8);
  const tune::Study shr_study = subset(tune::slate_cholesky_study(false), 6);
  for (int shards : {1, 2, 4}) {
    dist::SubprocessExecutor sub;
    const tune::TuneResult iso =
        dist::run_sharded(iso_study, isolated_options(), shards, sub);
    EXPECT_EQ(iso.executor, "subprocess");
    expect_equal_results(
        tune::merge_shards(iso_study, isolated_options(), shards), iso,
        "isolated, shards=" + std::to_string(shards));

    dist::SubprocessExecutor sub2;
    const tune::TuneResult shr =
        dist::run_sharded(shr_study, shared_options(), shards, sub2);
    expect_equal_results(
        tune::merge_shards(shr_study, shared_options(), shards), shr,
        "shared stats, shards=" + std::to_string(shards));
  }
}

TEST(Subprocess, PeriodicExchangeIsDeterministicAndMatchesInProcess) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  const tune::TuneOptions opt = shared_options();
  const dist::ExchangePolicy every1{1};
  dist::SubprocessExecutor sub_a, sub_b;
  const tune::TuneResult a = dist::run_sharded(study, opt, 2, sub_a, every1);
  const tune::TuneResult b = dist::run_sharded(study, opt, 2, sub_b, every1);
  EXPECT_GT(a.exchange_rounds, 0);
  expect_equal_results(a, b, "subprocess exchange repeat");
  // The in-process lockstep rounds realize the identical protocol: the
  // exchange schedule is a pure function of (seed, shard count, interval),
  // not of the transport.
  dist::InProcessExecutor inproc;
  const tune::TuneResult c = dist::run_sharded(study, opt, 2, inproc, every1);
  EXPECT_EQ(a.exchange_rounds, c.exchange_rounds);
  expect_equal_results(a, c, "subprocess vs in-process exchange");
}

TEST(Subprocess, SocketTransportBitIdenticalToDirTransport) {
  // Same worker loop, different shared store: coordinating the fleet
  // through a TCP blob server instead of the run directory must not be
  // observable in the result — mid-sweep exchange included.
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  const tune::TuneOptions opt = shared_options();
  const dist::ExchangePolicy every1{1};
  dist::SubprocessOptions dopts;
  dopts.transport = "dir";
  dist::SubprocessOptions sopts;
  sopts.transport = "socket";
  dist::SubprocessExecutor dir_exec(dopts);
  dist::SubprocessExecutor sock_exec(sopts);
  const tune::TuneResult a = dist::run_sharded(study, opt, 2, dir_exec, every1);
  const tune::TuneResult b =
      dist::run_sharded(study, opt, 2, sock_exec, every1);
  EXPECT_GT(b.exchange_rounds, 0);
  expect_equal_results(a, b, "dir vs socket transport");
}

TEST(Subprocess, ExchangeMailboxIsGarbageCollectedAfterTheRun) {
  // With the default fault policy (no retries, no checkpoints) resume
  // replay is impossible, so the manifest authorizes in-run delta GC and
  // the launcher sweeps the mailbox when the fleet finishes: a surviving
  // run directory keeps only the done markers — no round deltas, no
  // progress markers — and the collected run still folds bit-identical
  // to the in-process exchange.
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  const tune::TuneOptions opt = shared_options();
  dist::SubprocessOptions gopts;
  gopts.run_dir = dist::make_temp_dir("critter-gc-test-");
  gopts.transport = "dir";
  dist::SubprocessExecutor sub(gopts);
  const tune::TuneResult a =
      dist::run_sharded(study, opt, 2, sub, dist::ExchangePolicy{1});
  EXPECT_GT(a.exchange_rounds, 0);

  const std::string manifest = core::read_file(gopts.run_dir + "/run.txt");
  EXPECT_NE(manifest.find("gc_exchange=1"), std::string::npos)
      << "default fault policy must authorize exchange GC";
  int deltas = 0, progress = 0, done = 0;
  for (const std::string& name : core::list_dir(gopts.run_dir + "/exchange")) {
    if (name.find(".snap") != std::string::npos) ++deltas;
    if (name.find(".progress") != std::string::npos) ++progress;
    if (name.find(".done") != std::string::npos) ++done;
  }
  EXPECT_EQ(deltas, 0) << "round deltas survived the end-of-run sweep";
  EXPECT_EQ(progress, 0) << "progress markers survived the end-of-run sweep";
  EXPECT_GT(done, 0) << "done markers are the fleet's record and must stay";

  dist::InProcessExecutor inproc;
  const tune::TuneResult b =
      dist::run_sharded(study, opt, 2, inproc, dist::ExchangePolicy{1});
  expect_equal_results(a, b, "collected subprocess vs in-process exchange");
  dist::remove_dir_tree(gopts.run_dir);
}

TEST(Subprocess, IsolatedModeExchangePublishesEmptyDeltasSafely) {
  // Isolated-parallel sessions export no shared statistics; with exchange
  // on, their rounds publish empty payloads that peers must skip
  // (regression: the peer once fed the 0-rank payload to
  // StatSnapshot::load and the whole fleet aborted).
  const tune::Study study = subset(tune::capital_cholesky_study(false), 8);
  tune::TuneOptions opt = isolated_options();
  opt.workers = 2;  // ParallelIsolated mode
  dist::SubprocessExecutor sub;
  const tune::TuneResult a =
      dist::run_sharded(study, opt, 2, sub, dist::ExchangePolicy{1});
  EXPECT_GT(a.exchange_rounds, 0);
  dist::InProcessExecutor inproc;
  const tune::TuneResult b =
      dist::run_sharded(study, opt, 2, inproc, dist::ExchangePolicy{1});
  expect_equal_results(a, b, "isolated exchange across executors");
  expect_equal_results(tune::run_study(study, opt), a, "vs unsharded",
                       /*compare_stats=*/false);
}

TEST(Subprocess, WarmStartTravelsThroughRunDirectory) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 4);
  const tune::TuneOptions opt = shared_options();
  const tune::TuneResult prev = tune::run_study(study, opt);
  ASSERT_FALSE(prev.stats.empty());
  tune::TuneOptions warmed = opt;
  warmed.warm_start = &prev.stats;
  const tune::TuneResult legacy = tune::merge_shards(study, warmed, 2);
  dist::SubprocessExecutor sub;
  warmed.warm_start = &prev.stats;  // merge_shards copies consume it per run
  const tune::TuneResult r = dist::run_sharded(study, warmed, 2, sub);
  expect_equal_results(legacy, r, "warm-started subprocess shards");
}

// ---------------------------------------------------------------------------
// Model-based strategies across executors (DESIGN.md §9)
// ---------------------------------------------------------------------------

TEST(ModelStrategies, SurrogateEiWithExchangeIdenticalAcrossExecutors) {
  // The §9 determinism contract, end to end: a model-guided sweep's
  // proposals depend on its told outcomes and on the exchange deltas it
  // ingests, and both are scheduled identically by the in-process lockstep
  // rounds and the subprocess file protocol — so the whole run must be
  // bit-identical across executors and across repeats.
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  tune::TuneOptions opt = shared_options();
  opt.strategy = "surrogate-ei";
  opt.strategy_options["init"] = "3";
  const dist::ExchangePolicy every1{1};
  dist::InProcessExecutor inproc;
  const tune::TuneResult a = dist::run_sharded(study, opt, 2, inproc, every1);
  EXPECT_GT(a.exchange_rounds, 0);
  EXPECT_EQ(a.strategy, "surrogate-ei");
  const tune::TuneResult b = dist::run_sharded(study, opt, 2, inproc, every1);
  expect_equal_results(a, b, "surrogate-ei exchange repeat");
  dist::SubprocessExecutor sub;
  const tune::TuneResult c = dist::run_sharded(study, opt, 2, sub, every1);
  EXPECT_EQ(a.exchange_rounds, c.exchange_rounds);
  expect_equal_results(a, c, "surrogate-ei in-process vs subprocess");
}

TEST(ModelStrategies, CopulaPriorTravelsThroughRunDirectory) {
  // Both prior transports — an in-memory snapshot (published as
  // prior.snap) and a prior file path in the run manifest — must reach the
  // shard workers and produce the identical copula-transfer sweep the
  // in-process executor runs.
  const tune::Study study = subset(tune::slate_cholesky_study(false), 8);
  const tune::TuneResult donor = tune::run_study(study, shared_options());
  ASSERT_FALSE(donor.stats.empty());

  tune::TuneOptions opt = shared_options();
  opt.strategy = "copula-transfer";
  opt.prior = &donor.stats;
  dist::InProcessExecutor inproc;
  const tune::TuneResult a =
      dist::run_sharded(study, opt, 2, inproc, dist::ExchangePolicy{1});
  EXPECT_EQ(a.strategy, "copula-transfer");  // the prior arrived
  opt.prior = &donor.stats;
  dist::SubprocessExecutor sub;
  const tune::TuneResult b =
      dist::run_sharded(study, opt, 2, sub, dist::ExchangePolicy{1});
  expect_equal_results(a, b, "copula prior snapshot across executors");

  const std::string path = ::testing::TempDir() + "dist_prior.snap";
  donor.stats.save_file(path);
  tune::TuneOptions by_file = shared_options();
  by_file.strategy = "copula-transfer";
  by_file.prior_file = path;
  dist::SubprocessExecutor sub2;
  const tune::TuneResult c =
      dist::run_sharded(study, by_file, 2, sub2, dist::ExchangePolicy{1});
  expect_equal_results(a, c, "copula prior file across executors");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Failure paths: crash, missing result, stale manifest — errors, not hangs
// ---------------------------------------------------------------------------

TEST(SubprocessFailure, WorkerCrashMidSweepAbortsFleetWithDiagnosis) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 6);
  ScopedShardFault fault("1:crash-after-batch");
  dist::SubprocessExecutor sub;
  try {
    // Exchange every batch, so the surviving shard is blocked waiting on
    // the crashed peer — the abort marker must unblock it.
    dist::run_sharded(study, shared_options(), 2, sub,
                      dist::ExchangePolicy{1});
    FAIL() << "crashed worker did not surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("42"), std::string::npos) << what;
    EXPECT_NE(what.find("run directory kept"), std::string::npos) << what;
  }
}

TEST(SubprocessFailure, CleanExitWithoutResultIsAMissingSnapshotError) {
  const tune::Study study = subset(tune::capital_cholesky_study(false), 4);
  ScopedShardFault fault("0:skip-result");
  dist::SubprocessExecutor sub;
  try {
    dist::run_sharded(study, isolated_options(), 2, sub);
    FAIL() << "missing result did not surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard worker 0"), std::string::npos) << what;
    EXPECT_NE(what.find("result"), std::string::npos) << what;
  }
}

TEST(SubprocessFailure, AdHocStudyIsRejectedUpFront) {
  tune::Study study = subset(tune::capital_cholesky_study(false), 4);
  study.workload.clear();  // ad hoc: workers could not rebuild it
  dist::SubprocessExecutor sub;
  try {
    dist::run_sharded(study, isolated_options(), 2, sub);
    FAIL() << "ad-hoc study accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("registry workload"),
              std::string::npos)
        << e.what();
  }
}

TEST(Protocol, StaleAndMissingManifestsAreDetected) {
  const std::string dir = dist::make_temp_dir("critter-proto-test-");
  // Unpublished artifact: "missing", immediately.
  EXPECT_THROW(dist::read_published(dir, "nothing.bin"), std::runtime_error);

  // Healthy publish round-trips.
  dist::publish_file(dir, "a.bin", "payload-bytes");
  EXPECT_TRUE(dist::published(dir, "a.bin"));
  EXPECT_EQ(dist::read_published(dir, "a.bin"), "payload-bytes");

  // Manifest without its payload: stale.
  dist::publish_file(dir, "b.bin", "gone");
  ASSERT_EQ(std::remove((dir + "/b.bin").c_str()), 0);
  try {
    dist::read_published(dir, "b.bin");
    FAIL() << "stale manifest accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale manifest"), std::string::npos)
        << e.what();
  }

  // Payload shorter than the manifest declares: stale.
  dist::publish_file(dir, "c.bin", "full-length-payload");
  dist::write_file(dir + "/c.bin", "short");
  EXPECT_THROW(dist::read_published(dir, "c.bin"), std::runtime_error);

  // Same length, corrupt bytes: checksum mismatch.
  dist::publish_file(dir, "d.bin", "payload-bytes");
  dist::write_file(dir + "/d.bin", "payload-bytez");
  EXPECT_THROW(dist::read_published(dir, "d.bin"), std::runtime_error);

  dist::remove_dir_tree(dir);
}

// ---------------------------------------------------------------------------
// merge_state: the session-level exchange hook
// ---------------------------------------------------------------------------

TEST(MergeState, FoldsBetweenBatchesAndRejectsMidBatch) {
  const tune::Study study = subset(tune::slate_cholesky_study(false), 4);
  const tune::TuneOptions opt = shared_options();
  const tune::TuneResult donor = tune::run_study(study, opt);
  ASSERT_FALSE(donor.stats.empty());

  tune::Tuner session(study, opt);
  const std::vector<int> batch = session.ask();
  ASSERT_FALSE(batch.empty());
  EXPECT_THROW(session.merge_state(donor.stats), std::runtime_error);
  session.tell(session.evaluate(batch));
  session.merge_state(donor.stats);  // between batches: legal
  while (session.step()) {
  }
  // The fold reached the shared statistics (deterministically): folding
  // the same donor twice must agree with itself.
  tune::Tuner repeat(study, opt);
  const std::vector<int> rb = repeat.ask();
  repeat.tell(repeat.evaluate(rb));
  repeat.merge_state(donor.stats);
  while (repeat.step()) {
  }
  EXPECT_TRUE(
      session.export_state().same_statistics(repeat.export_state()));
  EXPECT_FALSE(session.export_state().same_statistics(donor.stats));
}

int main(int argc, char** argv) {
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
