// Observability layer (DESIGN.md §14): the metrics registry, the
// trace-span ring buffers, the Chrome trace-event exporter, and leveled
// logging.  The exporter tests validate real JSON with a small
// recursive-descent parser — a trace no tool can load is a trace that
// does not exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace obs = critter::obs;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: enough of RFC 8259 to validate exporter output and
// walk the trace-event schema.  Throws std::runtime_error on malformed
// input.
// ---------------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON bytes");
    return v;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string("JSON parse error at offset ") +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.kind = Json::kString;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) expect(*p);
  }
  Json boolean() {
    Json v;
    v.kind = Json::kBool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
    }
    return v;
  }
  Json number() {
    const std::size_t start = pos_;
    consume('-');
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
    Json v;
    v.kind = Json::kNumber;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;
            out += '?';  // codepoint identity is irrelevant to the schema
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }
  Json array() {
    expect('[');
    Json v;
    v.kind = Json::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }
  Json object() {
    expect('{');
    Json v;
    v.kind = Json::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      v.obj[key] = value();
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

/// Chrome trace-event schema checks every exported event must satisfy.
void check_trace_event_schema(const Json& ev) {
  ASSERT_EQ(ev.kind, Json::kObject);
  ASSERT_TRUE(ev.has("name"));
  ASSERT_TRUE(ev.has("ph"));
  ASSERT_TRUE(ev.has("ts"));
  ASSERT_TRUE(ev.has("pid"));
  ASSERT_TRUE(ev.has("tid"));
  const std::string ph = ev.at("ph").str;
  if (ph == "X") ASSERT_TRUE(ev.has("dur"));
  if (ph == "s" || ph == "f") ASSERT_TRUE(ev.has("id"));
}

struct TraceGuard {
  TraceGuard() {
    obs::trace_reset_for_tests();
    obs::trace_force(true);
  }
  ~TraceGuard() {
    obs::trace_unforce();
    obs::trace_reset_for_tests();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramRoundTrip) {
  obs::metrics_reset_for_tests();
  obs::counter("t.count").add();
  obs::counter("t.count").add(4);
  obs::gauge("t.gauge").set(2.5);
  obs::Histogram& h = obs::histogram("t.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  EXPECT_EQ(obs::counter("t.count").value(), 5u);
  EXPECT_DOUBLE_EQ(obs::gauge("t.gauge").value(), 2.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);

  const std::string text = obs::metrics_text();
  EXPECT_NE(text.find("t.count 5"), std::string::npos);
  EXPECT_NE(text.find("t.hist.count 3"), std::string::npos);

  const std::string compact = obs::metrics_compact();
  EXPECT_NE(compact.find("t.count=5"), std::string::npos);
  obs::metrics_reset_for_tests();
}

TEST(ObsMetrics, JsonIsValidAndStable) {
  obs::metrics_reset_for_tests();
  obs::counter("j.b").add(2);
  obs::counter("j.a").add(1);
  obs::gauge("j.g").set(1.25);
  obs::histogram("j.h", {0.5}).observe(0.25);

  const std::string a = obs::metrics_json();
  const std::string b = obs::metrics_json();
  EXPECT_EQ(a, b) << "snapshots of unchanged metrics must be byte-stable";

  const Json doc = parse_json(a);
  ASSERT_EQ(doc.kind, Json::kObject);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("j.a").num, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("j.b").num, 2.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("j.g").num, 1.25);
  const Json& h = doc.at("histograms").at("j.h");
  EXPECT_DOUBLE_EQ(h.at("count").num, 1.0);
  EXPECT_DOUBLE_EQ(h.at("sum").num, 0.25);
  ASSERT_EQ(h.at("buckets").arr.size(), 2u);
  obs::metrics_reset_for_tests();
}

TEST(ObsMetrics, ConcurrentAddsAreExact) {
  obs::metrics_reset_for_tests();
  obs::Counter& c = obs::counter("c.adds");
  obs::Histogram& h = obs::histogram("c.hist");
  constexpr int kN = 4000;
  critter::util::ThreadPool pool(4);
  pool.parallel_for(kN, [&](int i) {
    c.add();
    h.observe(1e-6 * (1 + (i & 7)));
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kN));
  obs::metrics_reset_for_tests();
}

TEST(ObsMetrics, NameKindMismatchFails) {
  obs::metrics_reset_for_tests();
  obs::counter("k.name");
  EXPECT_THROW(obs::gauge("k.name"), std::runtime_error);
  obs::metrics_reset_for_tests();
}

TEST(ObsMetrics, PhaseLabel) {
  obs::set_phase("exchange");
  EXPECT_STREQ(obs::current_phase(), "exchange");
  obs::set_phase("idle");
}

// ---------------------------------------------------------------------------
// Trace rings + exporter
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledEmittersRecordNothing) {
  obs::trace_reset_for_tests();
  obs::trace_force(false);
  {
    obs::ScopedSpan span("quiet", "test");
    obs::trace_instant("quiet.i", "test");
    obs::trace_flow('s', "quiet.f", "test", 7);
  }
  obs::trace_unforce();
  const Json doc = parse_json(obs::trace_export_chrome());
  EXPECT_TRUE(doc.at("traceEvents").arr.empty());
  obs::trace_reset_for_tests();
}

TEST(ObsTrace, RingOverflowDropsOldest) {
  obs::trace_reset_for_tests();
  obs::trace_set_capacity(8);
  obs::trace_force(true);
  for (int i = 0; i < 20; ++i)
    obs::trace_instant("tick", "test", "i", static_cast<std::uint64_t>(i));
  obs::trace_unforce();

  EXPECT_EQ(obs::trace_dropped(), 12u);
  const Json doc = parse_json(obs::trace_export_chrome());
  const std::vector<Json>& evs = doc.at("traceEvents").arr;
  ASSERT_EQ(evs.size(), 8u);
  // Drop-oldest: exactly ticks 12..19 survive, still in emit order.
  for (std::size_t j = 0; j < evs.size(); ++j) {
    check_trace_event_schema(evs[j]);
    EXPECT_DOUBLE_EQ(evs[j].at("args").at("i").num,
                     static_cast<double>(12 + j));
  }
  obs::trace_set_capacity(16384);
  obs::trace_reset_for_tests();
}

TEST(ObsTrace, ExporterMatchesChromeSchema) {
  TraceGuard guard;
  {
    obs::ScopedSpan outer("outer", "test", "n", 3);
    { obs::ScopedSpan inner("inner", "test"); }
    obs::trace_instant("mark", "test");
    obs::trace_flow('s', "hop", "test", 42);
    obs::trace_flow('f', "hop", "test", 42);
  }
  const Json doc = parse_json(obs::trace_export_chrome());
  const std::vector<Json>& evs = doc.at("traceEvents").arr;
  ASSERT_EQ(evs.size(), 5u);
  int spans = 0, instants = 0, starts = 0, finishes = 0;
  for (const Json& ev : evs) {
    check_trace_event_schema(ev);
    const std::string ph = ev.at("ph").str;
    if (ph == "X") ++spans;
    if (ph == "i") ++instants;
    if (ph == "s") ++starts;
    if (ph == "f") ++finishes;
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(finishes, 1);
}

TEST(ObsTrace, ConcurrentEmitFromThreadPool) {
  TraceGuard guard;
  constexpr int kN = 2000;
  critter::util::ThreadPool pool(4);
  pool.parallel_for(kN, [&](int i) {
    obs::ScopedSpan span("work", "test", "i", static_cast<std::uint64_t>(i));
    obs::trace_instant("step", "test");
  });
  const Json doc = parse_json(obs::trace_export_chrome());
  // Every emit lands in its thread's own ring; nothing dropped below
  // capacity, nothing torn (the parse above would have failed).
  EXPECT_EQ(doc.at("traceEvents").arr.size(),
            static_cast<std::size_t>(2 * kN));
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(ObsTrace, MergePreservesProcessRows) {
  obs::trace_reset_for_tests();
  obs::trace_force(true);

  obs::trace_set_pid(0);
  obs::trace_instant("shard0.tick", "test");
  const std::string doc0 = obs::trace_export_chrome();
  obs::trace_reset_for_tests();

  obs::trace_set_pid(1);
  obs::trace_instant("shard1.tick", "test");
  const std::string doc1 = obs::trace_export_chrome();
  obs::trace_unforce();
  obs::trace_reset_for_tests();
  obs::trace_set_pid(-1);

  const std::string merged = obs::trace_merge_chrome(
      {doc0, doc1}, {{0, "shard 0"}, {1, "shard 1"}});
  const Json doc = parse_json(merged);
  const std::vector<Json>& evs = doc.at("traceEvents").arr;
  int meta = 0;
  bool saw0 = false, saw1 = false;
  for (const Json& ev : evs) {
    if (ev.at("ph").str == "M") {
      ++meta;
      continue;
    }
    check_trace_event_schema(ev);
    if (ev.at("name").str == "shard0.tick") {
      saw0 = true;
      EXPECT_DOUBLE_EQ(ev.at("pid").num, 0.0);
    }
    if (ev.at("name").str == "shard1.tick") {
      saw1 = true;
      EXPECT_DOUBLE_EQ(ev.at("pid").num, 1.0);
    }
  }
  EXPECT_EQ(meta, 2) << "one process_name metadata row per shard";
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

TEST(ObsLog, LevelGating) {
  obs::log_force_level(obs::LogLevel::kError);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));

  obs::log_force_level(obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));

  // Filtered emits must be harmless no-ops.
  obs::log_force_level(obs::LogLevel::kError);
  obs::log_debug("never shown %d", 1);
  obs::log_force_level(obs::LogLevel::kWarn);  // the documented default
}
