// The tuner daemon: ask/tell tuning as a multi-client TCP service.  The
// acceptance contract is bit-identity with the single-process sweep —
// concurrent clients, a client dropped mid-claim, a daemon killed outright
// (kill -9) and restarted on its state directory, and a SIGTERM'd daemon
// resumed later must all select the same configuration with the same
// statistics as tune::run_study().
//
// This binary is its own daemon: the subprocess scenarios re-exec it with
// --tuner-daemon, so main() routes that entry point before gtest.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/fsio.hpp"
#include "core/stat_store.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "tune/tuner.hpp"

namespace core = critter::core;
namespace net = critter::net;
namespace serve = critter::serve;
namespace tune = critter::tune;
using critter::Policy;

namespace {

tune::Study small_study(int nconfigs = 10) {
  tune::Study study = tune::capital_cholesky_study(false);
  if (nconfigs < static_cast<int>(study.configs.size()))
    study.configs.resize(nconfigs);
  return study;
}

/// Outcome-dependent asks (early discard against the running incumbent):
/// if a remote evaluation differed from the local one by even a bit, the
/// strategy's proposals — and therefore the tell count and the selection —
/// would diverge, so these options make the bit-identity checks sharp.
tune::TuneOptions adaptive_options() {
  tune::TuneOptions opt;
  opt.policy = Policy::OnlinePropagation;
  opt.samples = 1;
  opt.strategy = "ci-discard";
  return opt;
}

serve::ClientOptions client_options(int port) {
  serve::ClientOptions copt;
  copt.port = port;
  return copt;
}

/// The daemon's answer must equal the single-process sweep's: same
/// selected configuration, same shared statistics (same_statistics — the
/// statistical-equality contract every executor in this codebase meets;
/// per-epoch scratch counters are dead state and excluded by design).
void expect_matches_in_process(serve::TunerClient& client,
                               const tune::TuneResult& ref,
                               const std::string& what) {
  const serve::StatusReply st = client.status();
  EXPECT_TRUE(st.done) << what << ": " << st.text;
  EXPECT_EQ(st.best_predicted, ref.best_predicted()) << what << ": "
                                                     << st.text;
  EXPECT_EQ(st.evaluated, ref.evaluated_configs) << what << ": " << st.text;
  const std::string exported = client.export_stats();
  ASSERT_FALSE(exported.empty()) << what;
  const core::StatSnapshot stats = core::StatSnapshot::from_string(exported);
  EXPECT_TRUE(stats.same_statistics(ref.stats)) << what << " statistics";
}

/// Re-exec this test binary as a daemon subprocess (the kill -9 and
/// SIGTERM scenarios need a process to kill, not an in-process object).
pid_t spawn_daemon(const std::string& state_dir) {
  // A restarted daemon binds a fresh ephemeral port; drop the old port
  // file so read_daemon_port cannot rendezvous with the dead instance.
  ::remove((state_dir + "/port").c_str());
  const std::string sd = "--state-dir=" + state_dir;
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl("/proc/self/exe", "test_serve", "--tuner-daemon", sd.c_str(),
            "--port=0", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Raw framed request without opening a session (tunectl's sessionless
/// path) — lets tests poke the protocol below the TunerClient surface.
net::Frame raw_request(int port, std::uint32_t verb,
                       const std::string& payload) {
  net::Connection conn = net::Connection::connect("127.0.0.1", port, 5.0);
  net::send_frame(conn, net::kHello, serve::kTuneService, 5.0);
  const net::Frame hello = net::recv_frame(conn, 5.0);
  EXPECT_EQ(hello.verb, net::kOk);
  net::send_frame(conn, verb, payload, 5.0);
  return net::recv_frame(conn, 5.0);
}

struct TempDir {
  explicit TempDir(const char* prefix) : path(core::make_temp_dir(prefix)) {}
  ~TempDir() { core::remove_dir_tree(path); }
  std::string path;
};

}  // namespace

// ---------------------------------------------------------------------------
// In-process daemon scenarios
// ---------------------------------------------------------------------------

TEST(Daemon, SingleClientReproducesTheInProcessSweep) {
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_single");
  serve::TunerDaemon daemon({dir.path});
  serve::TunerClient client(study, opt, "solo",
                            client_options(daemon.port()));
  const serve::ClientReport rep = client.run();
  EXPECT_TRUE(rep.done);
  EXPECT_GT(rep.tells, 0);
  EXPECT_EQ(rep.reconnects, 0);
  expect_matches_in_process(client, ref, "single client");
}

TEST(Daemon, TwoConcurrentClientsReproduceTheInProcessSweep) {
  // The flagship concurrency contract: one claim outstanding at a time,
  // every claim evaluated by whichever client holds it, and the interleaving
  // — whatever the scheduler picks — must not be observable in the result.
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_pair");
  serve::TunerDaemon daemon({dir.path});
  serve::ClientReport reps[2];
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i)
    threads.emplace_back([&, i] {
      serve::TunerClient c(study, opt, "pair", client_options(daemon.port()));
      reps[i] = c.run();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(reps[0].done);
  EXPECT_TRUE(reps[1].done);

  serve::TunerClient check(study, opt, "pair", client_options(daemon.port()));
  const serve::StatusReply st = check.status();
  // Every tell came from exactly one of the two clients.
  EXPECT_EQ(reps[0].tells + reps[1].tells, st.tells);
  expect_matches_in_process(check, ref, "two concurrent clients");
}

TEST(Daemon, DroppedClientsClaimReissuesWithoutChangingTheAnswer) {
  // Injected churn: the first client walks away holding a claim.  The
  // daemon must re-issue that exact batch to the survivor (nothing can
  // have changed while it was out), so the sweep finishes bit-identically.
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_churn");
  serve::TunerDaemon daemon({dir.path});
  serve::ClientOptions drop = client_options(daemon.port());
  drop.drop_after_asks = 1;
  serve::TunerClient dropper(study, opt, "churn", drop);
  const serve::ClientReport drep = dropper.run();
  EXPECT_TRUE(drep.dropped);
  EXPECT_EQ(drep.tells, 0);  // left with the first claim open

  serve::TunerClient survivor(study, opt, "churn",
                              client_options(daemon.port()));
  const serve::ClientReport srep = survivor.run();
  EXPECT_TRUE(srep.done);
  expect_matches_in_process(survivor, ref, "claim re-issued after drop");
}

TEST(Daemon, JoiningWithADifferentIdentityIsRejected) {
  // Concurrent clients must agree on what they are tuning; a mismatched
  // (study, options) join is an error, not a second session.
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  TempDir dir("critter_serve_identity");
  serve::TunerDaemon daemon({dir.path});
  serve::ClientOptions copt = client_options(daemon.port());
  copt.max_batches = 1;
  serve::TunerClient first(study, opt, "shared", copt);
  first.run();

  tune::TuneOptions other = opt;
  other.tolerance = opt.tolerance * 2;
  serve::ClientOptions strict = client_options(daemon.port());
  strict.max_reconnects = 0;  // surface the open error, don't retry it
  serve::TunerClient second(study, other, "shared", strict);
  try {
    second.run();
    FAIL() << "mismatched session identity was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different study/options identity"),
              std::string::npos)
        << e.what();
  }
}

TEST(Daemon, SessionlessVerbsAndUnknownSessionsError) {
  TempDir dir("critter_serve_raw");
  serve::TunerDaemon daemon({dir.path});
  const net::Frame st = raw_request(daemon.port(), net::kTuneStatus,
                                    serve::encode_session_ref("nope"));
  EXPECT_EQ(st.verb, net::kErr);
  EXPECT_NE(st.payload.find("unknown tuning session"), std::string::npos);
  // A client-initiated shutdown stops the daemon (tunectl's path).
  const net::Frame sd = raw_request(daemon.port(), net::kTuneShutdown, "");
  EXPECT_EQ(sd.verb, net::kOk);
  const double deadline = core::monotonic_s() + 5.0;
  while (!daemon.stopping() && core::monotonic_s() < deadline)
    core::sleep_ms(10);
  EXPECT_TRUE(daemon.stopping());
}

TEST(Daemon, SparseTransportIsDefaultAndByteEquivalent) {
  // Dirty-rank transport (DESIGN.md §13) is on by default: after the first
  // full payload, every state-bearing TELL ships a sparse patch, and the
  // daemon's spliced state cache must be byte-equivalent to what full
  // transport would have produced.
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_sparse");
  serve::TunerDaemon daemon({dir.path});
  serve::TunerClient client(study, opt, "sparse",
                            client_options(daemon.port()));
  const serve::ClientReport rep = client.run();
  EXPECT_TRUE(rep.done);

  const serve::StatusReply st = client.status();
  EXPECT_GT(st.sparse_tells, 0) << st.text;
  // Wire accounting travels in the status reply and its text.
  EXPECT_GT(st.bytes_in, 0);
  EXPECT_GT(st.bytes_out, 0);
  EXPECT_NE(st.text.find("sparse tells"), std::string::npos) << st.text;

  // The byte-equivalence pin: the exported state was grown exclusively by
  // splicing patches, yet it must be the canonical serialization of the
  // statistics it decodes to — splicing may never bend a byte.
  const std::string exported = client.export_stats();
  ASSERT_FALSE(exported.empty());
  EXPECT_EQ(core::StatSnapshot::from_string(exported).to_string(), exported);
  // And the patches actually beat full transport on the wire: the total
  // inbound traffic stays under the ship-the-full-state-every-tell bound.
  EXPECT_LT(st.bytes_in,
            st.tells * static_cast<std::int64_t>(exported.size()));
  expect_matches_in_process(client, ref, "sparse transport");
}

TEST(Daemon, JournalAppendsSparseRecordsBetweenFullSlots) {
  // Mid-stride durability: tell 1 publishes a full checkpoint slot; tells
  // 2..N (N < the full-slot period) append sparse records to the journal
  // instead of rewriting the snapshot.
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  TempDir dir("critter_serve_journal");
  serve::TunerDaemon daemon({dir.path});
  serve::ClientOptions partial = client_options(daemon.port());
  partial.max_batches = 3;
  serve::TunerClient client(study, opt, "journal", partial);
  EXPECT_EQ(client.run().tells, 3);

  const std::string sdir = dir.path + "/sessions/journal";
  EXPECT_TRUE(core::published(sdir, "ckpt_a.bin") ||
              core::published(sdir, "ckpt_b.bin"));
  EXPECT_TRUE(core::file_exists(sdir + "/ckpt_log.bin"));
}

// ---------------------------------------------------------------------------
// Daemon-as-a-process scenarios: kill -9 resume, SIGTERM flush
// ---------------------------------------------------------------------------

TEST(DaemonProcess, KillNineMidSessionResumesBitIdentically) {
  // The durability contract: every tell is journaled before it is
  // acknowledged, so a daemon killed outright and restarted on the same
  // state directory replays the session into the exact state it held —
  // clients pick up mid-sweep and the final answer matches run_study().
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_kill9");
  pid_t pid = spawn_daemon(dir.path);
  ASSERT_GT(pid, 0);
  int port = serve::read_daemon_port(dir.path);
  serve::ClientOptions partial = client_options(port);
  partial.max_batches = 4;
  serve::TunerClient before(study, opt, "durable", partial);
  const serve::ClientReport prep = before.run();
  EXPECT_EQ(prep.tells, 4);

  ::kill(pid, SIGKILL);
  wait_for_exit(pid);

  pid = spawn_daemon(dir.path);
  ASSERT_GT(pid, 0);
  port = serve::read_daemon_port(dir.path);
  serve::TunerClient after(study, opt, "durable", client_options(port));
  const serve::ClientReport rep = after.run();
  EXPECT_TRUE(rep.done);
  const serve::StatusReply st = after.status();
  // The resumed session kept the pre-kill tells instead of resweeping.
  EXPECT_EQ(st.tells, prep.tells + rep.tells);
  expect_matches_in_process(after, ref, "kill -9 resume");

  const net::Frame sd = raw_request(port, net::kTuneShutdown, "");
  EXPECT_EQ(sd.verb, net::kOk);
  const int status = wait_for_exit(pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(DaemonProcess, SigtermFlushesEverySessionThenResumesFromTheSnapshot) {
  const tune::Study study = small_study();
  const tune::TuneOptions opt = adaptive_options();
  const tune::TuneResult ref = tune::run_study(study, opt);

  TempDir dir("critter_serve_sigterm");
  pid_t pid = spawn_daemon(dir.path);
  ASSERT_GT(pid, 0);
  int port = serve::read_daemon_port(dir.path);
  serve::ClientOptions partial = client_options(port);
  partial.max_batches = 3;
  serve::TunerClient before(study, opt, "graceful", partial);
  EXPECT_EQ(before.run().tells, 3);

  ::kill(pid, SIGTERM);
  const int status = wait_for_exit(pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // The graceful-shutdown contract: a final self-contained full checkpoint
  // per session, with no increment log left to replay.
  const std::string sdir = dir.path + "/sessions/graceful";
  EXPECT_TRUE(core::published(sdir, "ckpt_a.bin") ||
              core::published(sdir, "ckpt_b.bin"));
  EXPECT_FALSE(core::file_exists(sdir + "/ckpt_log.bin"));

  pid = spawn_daemon(dir.path);
  ASSERT_GT(pid, 0);
  port = serve::read_daemon_port(dir.path);
  serve::TunerClient after(study, opt, "graceful", client_options(port));
  EXPECT_TRUE(after.run().done);
  expect_matches_in_process(after, ref, "SIGTERM flush + resume");

  raw_request(port, net::kTuneShutdown, "");
  wait_for_exit(pid);
}

int run_gtest(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

int main(int argc, char** argv) {
  if (serve::is_tuner_daemon(argc, argv))
    return serve::tuner_daemon_main(argc, argv);
  return run_gtest(argc, argv);
}
