// Statistics-pipeline microbenchmark: the cost of moving snapshot state —
// merge, exact-inverse diff, binary serialization, in-memory parse, and
// file load through both paths (mmap-backed vs stream read).  These are
// the operations the distributed executors pay per exchange round and per
// checkpoint, isolated from any simulation work.
//
// Emits the BENCH_*.json perf-trajectory shape (see bench_json.hpp) to
// BENCH_stat_store.json.  CRITTER_BENCH_RANKS (default 16) and
// CRITTER_BENCH_KERNELS (default 512) size the synthetic snapshot;
// CRITTER_BENCH_REPS scales the iteration counts.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_json.hpp"
#include "core/stat_store.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace core = critter::core;
namespace util = critter::util;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bench::BenchJson g_json;

/// A populated snapshot: `nkernels` distinct keys per rank with a few
/// Welford samples each, plus the key-of-hash side table — the shape the
/// exchange/checkpoint paths actually move.
core::StatSnapshot make_snapshot(int nranks, int nkernels, int salt) {
  core::StatSnapshot s;
  s.ranks.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    core::KernelTable& t = s.ranks[static_cast<std::size_t>(r)];
    t.init_world(nranks);
    for (int k = 0; k < nkernels; ++k) {
      const core::KernelKey key{static_cast<core::KernelClass>(k % 3),
                                {64 + k, 32 + k % 7, 0, 0},
                                0};
      core::KernelStats ks;
      for (int i = 0; i < 4; ++i)
        ks.add_sample(1.0 + salt + 0.25 * i + 0.01 * k);
      ks.total_invocations = 4;
      ks.total_executions = 4;
      ks.registered = true;
      t.K.emplace(key, ks);
      t.key_of_hash.emplace(key.hash(), key);
    }
    t.epoch = salt;
  }
  return s;
}

void report(util::Table& t, const std::string& name, double ops, double secs,
            const char* unit) {
  const double rate = ops / secs;
  t.row({name, util::Table::num(ops, 0), util::Table::num(secs, 3),
         util::Table::sci(rate)});
  g_json.add(name + "_per_sec", rate, unit);
}

}  // namespace

int main() {
  const int reps = static_cast<int>(util::env_int("CRITTER_BENCH_REPS", 1));
  const int nranks =
      static_cast<int>(util::env_int("CRITTER_BENCH_RANKS", 16));
  const int nkernels =
      static_cast<int>(util::env_int("CRITTER_BENCH_KERNELS", 512));

  const core::StatSnapshot base = make_snapshot(nranks, nkernels, 0);
  const core::StatSnapshot delta = make_snapshot(nranks, nkernels, 1);
  core::StatSnapshot evolved = base;
  evolved.merge(delta);

  util::Table t("Statistics pipeline: " + std::to_string(nranks) +
                " ranks x " + std::to_string(nkernels) + " kernels");
  t.header({"operation", "ops", "wall(s)", "ops/s"});

  // Merge: fold a same-shape delta into an accumulator, the per-exchange-
  // round operation.  The accumulator is folded repeatedly — each fold does
  // the same find + Chan-combine work.
  {
    const int iters = 200 * reps;
    core::StatSnapshot acc = base;
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i) acc.merge(delta);
    report(t, "merge", static_cast<double>(iters), now_s() - t0, "merges/s");
  }

  // Diff: the exact merge inverse computed per incremental checkpoint.
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i) sink += evolved.diff(base).ranks.size();
    report(t, "diff", static_cast<double>(iters), now_s() - t0, "diffs/s");
    if (sink < 0) std::printf("%f", sink);  // defeat dead-code elimination
  }

  // Serialize: snapshot -> in-memory binary payload (delta publish path).
  std::string payload;
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i) payload = evolved.to_string();
    report(t, "serialize", static_cast<double>(iters), now_s() - t0,
           "snapshots/s");
    g_json.add("snapshot_bytes", static_cast<double>(payload.size()),
               "bytes");
  }

  // Parse: payload -> snapshot, decoded in place from the borrowed buffer.
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i)
      sink += core::StatSnapshot::from_string(payload).ranks.size();
    report(t, "parse", static_cast<double>(iters), now_s() - t0,
           "snapshots/s");
    if (sink < 0) std::printf("%f", sink);
  }

  // Sparse transport (DESIGN.md §13), one dirty rank out of nranks — the
  // tell/exchange shape the dirty-rank codec exists for.  Encode is a
  // chunk-granular byte comparison against the base payload; apply is a
  // byte splice.  The size entries record what the wire actually carries
  // versus shipping the full snapshot.
  core::StatSnapshot dirtied = evolved;
  dirtied.ranks[0].merge(make_snapshot(nranks, nkernels, 2).ranks[0]);
  const std::string dirtied_payload = dirtied.to_string();
  std::string patch;
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i)
      patch = core::encode_sparse_patch(payload, dirtied_payload);
    report(t, "sparse_encode", static_cast<double>(iters), now_s() - t0,
           "patches/s");
    g_json.add("sparse_patch_bytes", static_cast<double>(patch.size()),
               "bytes");
  }
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i)
      sink += static_cast<double>(core::apply_sparse_patch(payload, patch)
                                      .size());
    report(t, "sparse_apply", static_cast<double>(iters), now_s() - t0,
           "patches/s");
    if (sink < 0) std::printf("%f", sink);
  }

  // Standalone mode-1 delta: the exchange-round publish when one rank
  // progressed since the last round (diff() leaves every other rank as a
  // clean chunk, which the sparse delta carries in the epoch array alone).
  const core::StatSnapshot round_delta = dirtied.diff(evolved);
  std::string sparse_delta;
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i)
      sparse_delta = core::encode_sparse_delta(round_delta);
    report(t, "sparse_delta_encode", static_cast<double>(iters),
           now_s() - t0, "deltas/s");
    g_json.add("sparse_delta_bytes",
               static_cast<double>(sparse_delta.size()), "bytes");
  }
  {
    const int iters = 200 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i)
      sink += static_cast<double>(
          core::expand_sparse_delta(sparse_delta).size());
    report(t, "sparse_delta_expand", static_cast<double>(iters),
           now_s() - t0, "deltas/s");
    if (sink < 0) std::printf("%f", sink);
  }

  // File load, both paths: load_file prefers an mmap of the file and
  // decodes in place; the stream path slurps through an istream first.
  const std::string path = "/tmp/critter_bench_snapshot.bin";
  evolved.save_file(path);
  {
    const int iters = 100 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i)
      sink += core::StatSnapshot::load_file(path).ranks.size();
    report(t, "load_mmap", static_cast<double>(iters), now_s() - t0,
           "loads/s");
    if (sink < 0) std::printf("%f", sink);
  }
  {
    const int iters = 100 * reps;
    const double t0 = now_s();
    double sink = 0;
    for (int i = 0; i < iters; ++i) {
      std::ifstream is(path, std::ios::binary);
      sink += core::StatSnapshot::load(is).ranks.size();
    }
    report(t, "load_read", static_cast<double>(iters), now_s() - t0,
           "loads/s");
    if (sink < 0) std::printf("%f", sink);
  }
  std::remove(path.c_str());

  t.print();
  g_json.ratio("load_mmap_vs_read", "load_mmap_per_sec", "load_read_per_sec");
  // Lower is better: the fraction of the full payload the sparse wire
  // formats actually move (one dirty rank of nranks, so ~1/nranks).
  g_json.ratio("sparse_patch_vs_full_bytes", "sparse_patch_bytes",
               "snapshot_bytes");
  g_json.ratio("sparse_delta_vs_full_bytes", "sparse_delta_bytes",
               "snapshot_bytes");
  g_json.write("stat_store", "BENCH_stat_store.json");
  return 0;
}
