// google-benchmark micro-suite: host-side cost of critter's interception
// primitives and of the simulator itself.  These quantify the claim that
// profiling overhead is "minimal" (paper §VI-B) and bound the wall-clock
// price of running the figure benches.
#include <benchmark/benchmark.h>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "core/profiler.hpp"
#include "core/wire.hpp"
#include "sim/api.hpp"

namespace sim = critter::sim;

static void BM_EngineBarrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(p, sim::Machine::noiseless());
    eng.run([](sim::RankCtx&) {
      for (int i = 0; i < 10; ++i) sim::barrier(sim::world());
    });
    benchmark::DoNotOptimize(eng.max_time());
  }
  state.SetItemsProcessed(state.iterations() * 10 * p);
}
BENCHMARK(BM_EngineBarrier)->Arg(4)->Arg(64)->Arg(512);

static void BM_InterceptedComputeKernel(benchmark::State& state) {
  critter::Config cfg;
  critter::Store store(1, cfg);
  sim::Engine eng(1, sim::Machine::noiseless());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    for (auto _ : state)
      critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, 64, 64,
                          64, 1.0, nullptr, 64, nullptr, 64, 0.0, nullptr, 64);
    (void)critter::stop();
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterceptedComputeKernel);

static void BM_InterceptedAllreduce(benchmark::State& state) {
  // Single-rank world: measures the pure interception cost (IntMsg pack,
  // fold, unpack, statistics) without cross-rank scheduling.
  critter::Config cfg;
  critter::Store store(1, cfg);
  sim::Engine eng(1, sim::Machine::noiseless());
  eng.run([&](sim::RankCtx&) {
    critter::start(store);
    for (auto _ : state)
      critter::mpi::allreduce(nullptr, nullptr, 1024,
                              sim::reduce_sum_double(), sim::world());
    (void)critter::stop();
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterceptedAllreduce);

static void BM_IntMsgPackFold(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  critter::RankProfiler rp;
  rp.table.channels.init_world(64);
  for (int i = 0; i < cap; ++i) rp.tilde[critter::util::mix64(i)] = i + 1;
  critter::core::IntMsg a(cap, 32), b(cap, 32);
  critter::Config cfg;
  auto fold = critter::core::IntMsg::fold_fn(cap, 32);
  for (auto _ : state) {
    a.pack(rp, true);
    fold(a.data(), b.data(), a.bytes());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(state.iterations() * a.bytes());
}
BENCHMARK(BM_IntMsgPackFold)->Arg(64)->Arg(256)->Arg(1024);

static void BM_ChannelFactorization(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> ranks(n);
  for (int i = 0; i < n; ++i) ranks[i] = 3 + 5 * i;
  for (auto _ : state) {
    auto ch = critter::core::channel_from_ranks(ranks);
    benchmark::DoNotOptimize(ch.hash());
  }
}
BENCHMARK(BM_ChannelFactorization)->Arg(16)->Arg(256)->Arg(4096);

BENCHMARK_MAIN();
