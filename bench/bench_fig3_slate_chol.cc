// Reproduces Fig. 3b / 3f / 3j for SLATE's Cholesky configuration space.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::slate_cholesky_study(critter::util::paper_scale());
  std::printf("%s: %d ranks, %d x %d matrix, %zu configurations\n",
              study.name.c_str(), study.nranks, study.n, study.n,
              study.configs.size());
  bench::print_fig3(study, "Fig3b", "Fig3f", "Fig3j");
  return 0;
}
