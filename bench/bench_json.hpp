// Shared BENCH_*.json emission for the benchmark binaries.
//
// Every bench records scalar results through one collector so the emitted
// JSON always carries host metadata — parallel-speedup ratios measured on a
// 1-core container read very differently from the same ratios on a real
// multi-core host, and the file must say which it was:
//
//   { "bench": "tuner",
//     "host": { "cores_online": 8, "hardware_concurrency": 8 },
//     "results": [ {"name": ..., "value": ..., "unit": ...}, ... ] }
//
// Derived `*_vs_*` ratios are declared by naming their numerator and
// denominator results (ratio()), never computed from ad-hoc locals: the
// recorded ratio is exactly value_of(num) / value_of(den), so a reader can
// re-derive and audit every ratio from the same file.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "util/check.hpp"

namespace bench {

class BenchJson {
 public:
  void add(const std::string& name, double value, const std::string& unit) {
    results_.push_back({name, value, unit});
  }

  double value_of(const std::string& name) const {
    for (const Entry& e : results_)
      if (e.name == name) return e.value;
    CRITTER_CHECK(false, "bench json: no result named '" + name + "'");
    return 0.0;
  }

  /// Record `name` = value_of(num) / value_of(den) (unit "x").  Both
  /// operands must already be recorded.
  void ratio(const std::string& name, const std::string& num,
             const std::string& den) {
    const double d = value_of(den);
    add(name, d != 0.0 ? value_of(num) / d : 0.0, "x");
  }

  /// Write the JSON file.  `default_path` is used unless CRITTER_BENCH_JSON
  /// overrides it; prints the path written on success.
  void write(const char* bench_name, const char* default_path) const {
    const char* override_path = std::getenv("CRITTER_BENCH_JSON");
    const std::string out = override_path ? override_path : default_path;
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name);
    std::fprintf(f,
                 "  \"host\": {\"cores_online\": %ld, "
                 "\"hardware_concurrency\": %u},\n",
                 ::sysconf(_SC_NPROCESSORS_ONLN),
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results_.size(); ++i)
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                   "\"%s\"}%s\n",
                   results_[i].name.c_str(), results_[i].value,
                   results_[i].unit.c_str(),
                   i + 1 < results_.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Entry> results_;
};

}  // namespace bench
