// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench prints the rows/series of one paper figure group.  Scaled-down
// defaults keep every binary in the seconds range; CRITTER_PAPER_SCALE=1
// switches to the paper's rank counts and matrix sizes, and
// CRITTER_BENCH_SAMPLES / CRITTER_BENCH_TOLS override the sweep density.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace bench {

using critter::Policy;
namespace tune = critter::tune;
namespace util = critter::util;

inline std::vector<double> tolerance_sweep() {
  // paper: log2(eps) from 0 down to -10; default here: every other point
  const int n = static_cast<int>(util::env_int("CRITTER_BENCH_TOLS", 6));
  std::vector<double> out;
  for (int i = 0; i < n; ++i)
    out.push_back(std::pow(2.0, -10.0 * i / std::max(1, n - 1)));
  return out;
}

inline int sample_count() {
  return static_cast<int>(util::env_int("CRITTER_BENCH_SAMPLES", 2));
}

inline const std::vector<Policy>& all_policies(bool with_eager) {
  static const std::vector<Policy> with_e = {
      Policy::ConditionalExecution, Policy::EagerPropagation,
      Policy::LocalPropagation, Policy::OnlinePropagation,
      Policy::AprioriPropagation};
  static const std::vector<Policy> without_e = {
      Policy::ConditionalExecution, Policy::LocalPropagation,
      Policy::OnlinePropagation, Policy::AprioriPropagation};
  return with_eager ? with_e : without_e;
}

/// Fig. 3 panels for one study: per-configuration BSP costs (critical path
/// and volumetric average) and modeled execution/computation/communication
/// times from a full instrumented execution.
inline void print_fig3(const tune::Study& study, const char* fig_costs,
                       const char* fig_comp, const char* fig_time) {
  util::Table costs(std::string(fig_costs) + ": " + study.name +
                    " BSP communication vs synchronization");
  costs.header({"config", "params", "sync-cp", "sync-avg", "commwords-cp",
                "commwords-avg"});
  util::Table comp(std::string(fig_comp) + ": " + study.name +
                   " BSP computation vs synchronization");
  comp.header({"config", "params", "sync-cp", "sync-avg", "flops-cp",
               "flops-avg"});
  util::Table times(std::string(fig_time) + ": " + study.name +
                    " execution/computation/communication time (s)");
  times.header({"config", "params", "exec", "comp", "comm"});

  for (const auto& cfg : study.configs) {
    critter::Report r = tune::measure_config(study, cfg, 1234 + cfg.index);
    const std::string lbl = cfg.label();
    const std::string idx = std::to_string(cfg.index);
    costs.row({idx, lbl, util::Table::sci(r.critical.sync_cost),
               util::Table::sci(r.volavg.sync_cost),
               util::Table::sci(r.critical.comm_cost),
               util::Table::sci(r.volavg.comm_cost)});
    comp.row({idx, lbl, util::Table::sci(r.critical.sync_cost),
              util::Table::sci(r.volavg.sync_cost),
              util::Table::sci(r.critical.comp_cost),
              util::Table::sci(r.volavg.comp_cost)});
    times.row({idx, lbl, util::Table::num(r.critical.exec_time, 6),
               util::Table::num(r.critical.comp_time, 6),
               util::Table::num(r.critical.comm_time, 6)});
  }
  costs.print();
  comp.print();
  times.print();
}

struct SweepRow {
  Policy policy;
  double tolerance;
  tune::TuneResult result;
};

/// Run the tolerance sweep for every policy (the Fig. 4/5 protocol).
inline std::vector<SweepRow> sweep(const tune::Study& study, bool with_eager,
                                   bool reset_per_config) {
  std::vector<SweepRow> rows;
  for (Policy pol : all_policies(with_eager)) {
    for (double tol : tolerance_sweep()) {
      tune::TuneOptions opt;
      opt.policy = pol;
      opt.tolerance = tol;
      opt.samples = sample_count();
      opt.reset_per_config = reset_per_config;
      opt.seed_salt = static_cast<std::uint64_t>(tol * 1e6) + 31 * static_cast<int>(pol);
      rows.push_back({pol, tol, tune::run_study(study, opt)});
    }
  }
  return rows;
}

inline void print_tuning_time(const std::vector<SweepRow>& rows,
                              const char* fig, const std::string& study_name) {
  util::Table t(std::string(fig) + ": " + study_name +
                " exhaustive-search execution time vs confidence tolerance");
  t.header({"policy", "log2(eps)", "tuning-time(s)", "full-exec(s)", "speedup"});
  for (const auto& r : rows)
    t.row({critter::policy_name(r.policy),
           util::Table::num(std::log2(r.tolerance), 1),
           util::Table::num(r.result.tuning_time, 4),
           util::Table::num(r.result.full_time, 4),
           util::Table::num(r.result.full_time /
                                std::max(r.result.tuning_time, 1e-300),
                            2)});
  t.print();
}

inline void print_mean_log_err(const std::vector<SweepRow>& rows,
                               const char* fig, const std::string& study_name,
                               const char* which) {
  util::Table t(std::string(fig) + ": " + study_name + " mean log2 " + which +
                " prediction error vs confidence tolerance");
  t.header({"policy", "log2(eps)", std::string("mean-log2-") + which + "-err"});
  for (const auto& r : rows)
    t.row({critter::policy_name(r.policy),
           util::Table::num(std::log2(r.tolerance), 1),
           util::Table::num(std::string(which) == "comp-time"
                                ? r.result.mean_log2_comp_err()
                                : r.result.mean_log2_err(),
                            3)});
  t.print();
}

inline void print_kernel_time(const std::vector<SweepRow>& rows,
                              const char* fig, const std::string& study_name) {
  util::Table t(std::string(fig) + ": " + study_name +
                " exhaustive-search selectively-executed kernel time");
  t.header({"policy", "log2(eps)", "kernel-time(s)", "full-kernel-time(s)",
            "reduction"});
  for (const auto& r : rows)
    t.row({critter::policy_name(r.policy),
           util::Table::num(std::log2(r.tolerance), 1),
           util::Table::num(r.result.kernel_time, 4),
           util::Table::num(r.result.full_kernel_time, 4),
           util::Table::num(r.result.full_kernel_time /
                                std::max(r.result.kernel_time, 1e-300),
                            2)});
  t.print();
}

/// Per-configuration prediction error at a handful of tolerances for one
/// policy (Fig. 4g/4h/5g/5h use online propagation).
inline void print_per_config_error(const tune::Study& study, const char* fig,
                                   const std::vector<double>& tols,
                                   bool reset_per_config, bool comp_time) {
  util::Table t(std::string(fig) + ": " + study.name + " per-configuration " +
                (comp_time ? "comp-time kernel" : "exec-time") +
                " prediction error (%), online freq propagation");
  std::vector<std::string> hdr{"config", "params"};
  for (double tol : tols) hdr.push_back("eps=2^" + util::Table::num(std::log2(tol), 0));
  t.header(hdr);
  std::vector<tune::TuneResult> results;
  for (double tol : tols) {
    tune::TuneOptions opt;
    opt.policy = Policy::OnlinePropagation;
    opt.tolerance = tol;
    opt.samples = sample_count();
    opt.reset_per_config = reset_per_config;
    opt.seed_salt = 77 + static_cast<std::uint64_t>(-std::log2(tol));
    results.push_back(tune::run_study(study, opt));
  }
  for (std::size_t v = 0; v < study.configs.size(); ++v) {
    std::vector<std::string> row{std::to_string(v),
                                 study.configs[v].label()};
    for (auto& res : results)
      row.push_back(util::Table::num(
          100.0 * (comp_time ? res.per_config[v].comp_err
                             : res.per_config[v].err),
          2));
    t.row(std::move(row));
  }
  t.print();
}

}  // namespace bench
