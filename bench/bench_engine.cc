// Engine hot-path microbenchmark: scheduler events/sec and p2p/collective
// throughput, plus the headline SLATE-Cholesky simulation workload.
//
// Emits both a human-readable table and the BENCH_*.json shape used to
// track the perf trajectory across PRs:
//
//   { "bench": "engine",
//     "results": [ {"name": ..., "value": ..., "unit": ...}, ... ] }
//
// CRITTER_BENCH_JSON overrides the output path (default BENCH_engine.json);
// CRITTER_BENCH_REPS scales the inner iteration counts.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "obs/trace.hpp"
#include "sim/api.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sim = critter::sim;
namespace util = critter::util;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bench::BenchJson g_json;

void report(util::Table& t, const std::string& name, double events,
            double secs) {
  const double rate = events / secs;
  t.row({name, util::Table::num(events, 0), util::Table::num(secs, 3),
         util::Table::sci(rate)});
  g_json.add(name + "_per_sec", rate, "events/s");
}

/// Nearest-neighbor ring exchange: every rank sends to the right and
/// receives from the left each iteration.  `payload` toggles real data
/// movement vs the model-mode (null-buffer) fast path.
double bench_p2p_ring(int nranks, int iters, int bytes, bool payload,
                      util::Table& t, const char* name) {
  sim::Engine eng(nranks, sim::Machine::knl_like());
  std::vector<double> buf(payload ? bytes / 8 : 0);
  const double t0 = now_s();
  eng.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    const int right = (ctx.rank + 1) % nranks;
    const int left = (ctx.rank + nranks - 1) % nranks;
    for (int it = 0; it < iters; ++it) {
      sim::Request r = sim::irecv(payload ? buf.data() : nullptr, bytes, left,
                                  it & 0xFF, w);
      sim::send(payload ? buf.data() : nullptr, bytes, right, it & 0xFF, w);
      sim::wait(r);
    }
  });
  const double secs = now_s() - t0;
  report(t, name, static_cast<double>(eng.p2p_count()), secs);
  return eng.max_time();
}

/// Back-to-back collectives on the world communicator.
double bench_allreduce(int nranks, int iters, int bytes, util::Table& t) {
  sim::Engine eng(nranks, sim::Machine::knl_like());
  const double t0 = now_s();
  eng.run([&](sim::RankCtx& ctx) {
    sim::Comm w = sim::world();
    for (int it = 0; it < iters; ++it) {
      sim::advance(1e-7 * (1 + (ctx.rank & 3)));
      sim::allreduce(nullptr, nullptr, bytes, sim::reduce_sum_double(), w);
    }
  });
  const double secs = now_s() - t0;
  // One collective op spans nranks participant events.
  report(t, "coll_allreduce_ops",
         static_cast<double>(eng.coll_count()) * nranks, secs);
  return eng.max_time();
}

/// One best-of-3 fully-instrumented SLATE-Cholesky run; returns the best
/// (events, secs) pair.  Best-of-3 because scheduler interference can only
/// slow a rep down, so the fastest rep is the least-noisy estimate of the
/// workload's true throughput.
std::pair<double, double> run_slate_cholesky(double* virt_out) {
  namespace tune = critter::tune;
  const auto study = tune::slate_cholesky_study(false);
  critter::Config pc;
  pc.mode = critter::ExecMode::Model;
  pc.selective = false;

  sim::Machine m = sim::Machine::knl_like();
  m.gamma = study.gamma;

  double virt = 0.0;
  double best_events = 0.0;
  double best_secs = 1.0;
  for (int rep = 0; rep < 3; ++rep) {
    critter::Store store(study.nranks, pc);
    sim::Engine eng(study.nranks, m, 1234 + rep);
    const double t0 = now_s();
    eng.run([&](sim::RankCtx&) {
      critter::start(store);
      tune::run_configuration(study, study.configs[0]);
      critter::stop();
    });
    const double secs = now_s() - t0;
    virt = eng.max_time();
    const double events =
        static_cast<double>(eng.p2p_count() + eng.coll_count());
    if (events / secs > best_events / best_secs) {
      best_events = events;
      best_secs = secs;
    }
  }
  if (virt_out != nullptr) *virt_out = virt;
  return {best_events, best_secs};
}

/// The headline workload: one fully-instrumented full execution of a
/// SLATE-Cholesky configuration (the substrate of Figs. 3-5), with tracing
/// compiled in but disabled — exactly the state the CI gate measures.
double bench_slate_cholesky(util::Table& t) {
  double virt = 0.0;
  const auto [events, secs] = run_slate_cholesky(&virt);
  report(t, "slate_cholesky_events", events, secs);
  return virt;
}

/// Trace passivity A/B (DESIGN.md §14): the same headline workload with
/// the span gate forced off and forced on.  trace_disabled_overhead ≈ 1
/// proves the compiled-in-but-disabled emitters cost one relaxed load;
/// trace_enabled_overhead bounds the recording cost.
void bench_trace_overhead(util::Table& t) {
  critter::obs::trace_force(false);
  const auto [off_events, off_secs] = run_slate_cholesky(nullptr);
  critter::obs::trace_force(true);
  const auto [on_events, on_secs] = run_slate_cholesky(nullptr);
  critter::obs::trace_unforce();
  report(t, "slate_cholesky_trace_off", off_events, off_secs);
  report(t, "slate_cholesky_trace_on", on_events, on_secs);
  g_json.ratio("trace_disabled_overhead", "slate_cholesky_trace_off_per_sec",
               "slate_cholesky_events_per_sec");
  g_json.ratio("trace_enabled_overhead", "slate_cholesky_trace_on_per_sec",
               "slate_cholesky_events_per_sec");
}

/// Serial vs thread-pooled reset_per_config sweep over 8 configurations.
/// On a multi-core host the pooled sweep should approach `workers`x; the
/// results are bit-identical either way (asserted in test_tune_parallel).
void bench_tune_sweep(util::Table& t) {
  namespace tune = critter::tune;
  auto study = tune::slate_cholesky_study(false);
  study.configs.resize(8);
  tune::TuneOptions opt;
  opt.policy = critter::Policy::OnlinePropagation;
  opt.tolerance = 0.25;
  opt.samples = 2;
  opt.reset_per_config = true;

  opt.workers = 1;
  const double t0 = now_s();
  auto serial = tune::run_study(study, opt);
  const double serial_s = now_s() - t0;

  opt.workers = 4;
  const double t1 = now_s();
  auto pooled = tune::run_study(study, opt);
  const double pooled_s = now_s() - t1;
  if (serial.per_config[0].pred_time != pooled.per_config[0].pred_time)
    std::fprintf(stderr, "WARNING: pooled sweep diverged from serial\n");

  t.row({"tune_sweep_serial", "8", util::Table::num(serial_s, 3),
         util::Table::sci(8.0 / serial_s)});
  t.row({"tune_sweep_4workers", "8", util::Table::num(pooled_s, 3),
         util::Table::sci(8.0 / pooled_s)});
  g_json.add("tune_sweep_serial_s", serial_s, "s");
  g_json.add("tune_sweep_4workers_s", pooled_s, "s");
  g_json.ratio("tune_sweep_speedup", "tune_sweep_serial_s",
               "tune_sweep_4workers_s");
}

}  // namespace

int main() {
  const int reps = static_cast<int>(util::env_int("CRITTER_BENCH_REPS", 1));

  util::Table t("Engine microbenchmark: scheduler + messaging throughput");
  t.header({"workload", "events", "wall(s)", "events/s"});

  bench_p2p_ring(64, 4000 * reps, 256, /*payload=*/false, t, "p2p_ring_model");
  bench_p2p_ring(64, 4000 * reps, 256, /*payload=*/true, t, "p2p_ring_payload");
  bench_allreduce(256, 500 * reps, 1024, t);
  bench_slate_cholesky(t);
  bench_trace_overhead(t);
  bench_tune_sweep(t);
  t.print();

  g_json.write("engine", "BENCH_engine.json");
  return 0;
}
