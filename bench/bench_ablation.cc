// Ablations of the design choices DESIGN.md calls out:
//   1. sqrt(k) confidence-interval shrinkage on/off (online vs conditional)
//      as a function of tolerance;
//   2. internal-message capacity (profiling overhead) vs tuning time;
//   3. prediction error vs simulator noise level at fixed tolerance —
//      an experiment the paper could not run on real hardware.
#include "bench_common.hpp"

int main() {
  const bool paper = critter::util::paper_scale();
  auto study = bench::tune::capital_cholesky_study(paper);

  {
    bench::util::Table t("Ablation 1: sqrt(k) CI shrinkage (conditional vs online), Capital");
    t.header({"log2(eps)", "cond-tuning(s)", "online-tuning(s)",
              "cond-skipped", "online-skipped"});
    for (double tol : bench::tolerance_sweep()) {
      bench::tune::TuneOptions c, o;
      c.policy = critter::Policy::ConditionalExecution;
      o.policy = critter::Policy::OnlinePropagation;
      c.tolerance = o.tolerance = tol;
      c.samples = o.samples = bench::sample_count();
      auto rc = bench::tune::run_study(study, c);
      auto ro = bench::tune::run_study(study, o);
      std::int64_t cs = 0, os = 0;
      for (auto& x : rc.per_config) cs += x.skipped;
      for (auto& x : ro.per_config) os += x.skipped;
      t.row({bench::util::Table::num(std::log2(tol), 1),
             bench::util::Table::num(rc.tuning_time, 4),
             bench::util::Table::num(ro.tuning_time, 4),
             std::to_string(cs), std::to_string(os)});
    }
    t.print();
  }

  {
    bench::util::Table t("Ablation 2: internal-message capacity vs overhead, Capital");
    t.header({"tilde-capacity", "tuning-time(s)", "mean-err(%)"});
    for (int cap : {32, 128, 256, 1024}) {
      // run_study builds its own store; adjust via a thin wrapper study run
      bench::tune::TuneOptions opt;
      opt.policy = critter::Policy::OnlinePropagation;
      opt.tolerance = 0.125;
      opt.samples = bench::sample_count();
      // The capacity knob lives in the profiler config; run one tolerance
      // with a custom store by temporarily shrinking the study.
      auto s2 = study;
      // (capacity is applied through a global default; emulate by running
      // the study and reporting — capacity is taken from TuneOptions below)
      opt.tilde_capacity = cap;
      auto r = bench::tune::run_study(s2, opt);
      t.row({std::to_string(cap), bench::util::Table::num(r.tuning_time, 4),
             bench::util::Table::num(100.0 * r.mean_err(), 2)});
    }
    t.print();
  }

  {
    bench::util::Table t("Ablation 3: prediction error vs machine noise, Capital, eps=2^-4");
    t.header({"noise-sigma", "mean-err(%)", "tuning-time(s)"});
    for (double sigma : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
      bench::tune::TuneOptions opt;
      opt.policy = critter::Policy::OnlinePropagation;
      opt.tolerance = 1.0 / 16.0;
      opt.samples = bench::sample_count();
      opt.comp_noise = sigma;
      opt.comm_noise = sigma;
      auto r = bench::tune::run_study(study, opt);
      t.row({bench::util::Table::num(sigma, 2),
             bench::util::Table::num(100.0 * r.mean_err(), 2),
             bench::util::Table::num(r.tuning_time, 4)});
    }
    t.print();
  }
  return 0;
}
