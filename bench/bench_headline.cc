// The paper's headline summary numbers (§I, §VI-B/C):
//   * tuning speedups from selective execution, per policy, at loose and
//     tight tolerances (Capital: up to 7.1x for eager propagation);
//   * prediction accuracy at those speedups (~98%);
//   * selectively-executed kernel-time reduction (SLATE Cholesky: up to
//     75x; CANDMC: 6.6x conditional, extra 3.3x from count propagation);
//   * optimal-configuration selection quality (>= 99% of optimum).
#include "bench_common.hpp"

int main() {
  const bool paper = critter::util::paper_scale();
  bench::util::Table t("Headline summary (paper Section VI)");
  t.header({"study", "policy", "log2(eps)", "tuning-speedup",
            "kernel-time-reduction", "mean-accuracy(%)", "selection-quality(%)"});

  struct Row {
    bench::tune::Study study;
    bool with_eager;
    bool reset;
  };
  std::vector<Row> studies = {
      {bench::tune::capital_cholesky_study(paper), true, false},
      {bench::tune::slate_cholesky_study(paper), false, true},
      {bench::tune::candmc_qr_study(paper), false, true},
      {bench::tune::slate_qr_study(paper), false, true},
  };

  for (auto& s : studies) {
    for (critter::Policy pol : bench::all_policies(s.with_eager)) {
      for (double tol : {0.25, 1.0 / 64.0}) {
        bench::tune::TuneOptions opt;
        opt.policy = pol;
        opt.tolerance = tol;
        opt.samples = bench::sample_count();
        opt.reset_per_config = s.reset;
        auto r = bench::tune::run_study(s.study, opt);
        t.row({s.study.name, critter::policy_name(pol),
               bench::util::Table::num(std::log2(tol), 0),
               bench::util::Table::num(
                   r.full_time / std::max(r.tuning_time, 1e-300), 2),
               bench::util::Table::num(
                   r.full_kernel_time / std::max(r.kernel_time, 1e-300), 2),
               bench::util::Table::num(100.0 * (1.0 - r.mean_err()), 2),
               bench::util::Table::num(100.0 * r.selection_quality(), 2)});
      }
    }
  }
  t.print();
  return 0;
}
