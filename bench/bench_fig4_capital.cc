// Reproduces Fig. 4a (tuning time vs tolerance, all five policies),
// Fig. 4e (mean log exec-time prediction error), and Fig. 4g
// (per-configuration exec-time error) for Capital's Cholesky.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::capital_cholesky_study(critter::util::paper_scale());
  std::printf("%s autotuning: %d ranks, n=%d, %zu configurations\n",
              study.name.c_str(), study.nranks, study.n, study.configs.size());
  // paper: statistics persist across Capital configurations (no reset)
  const auto rows = bench::sweep(study, /*with_eager=*/true,
                                 /*reset_per_config=*/false);
  bench::print_tuning_time(rows, "Fig4a", study.name);
  bench::print_mean_log_err(rows, "Fig4e", study.name, "exec-time");
  bench::print_per_config_error(study, "Fig4g",
                                {0.25, 0.125, 0.0625, 0.03125},
                                /*reset_per_config=*/false,
                                /*comp_time=*/false);
  return 0;
}
