// Tuner sweep throughput: configurations/second on the SLATE-Cholesky
// study for the three sweep modes —
//
//   serial               one store, configurations in sequence (PR-1
//                        behavior for every shared-statistics sweep);
//   isolated-parallel    reset_per_config sweep on a worker pool
//                        (bit-identical to its serial counterpart);
//   batch-shared-parallel the statistics-lifecycle path: workers evaluate
//                        batches against a shared snapshot and merge deltas
//                        at a barrier (eager/persistent/extrapolate sweeps
//                        no longer fall back to serial).
//
// Emits a human-readable table and the BENCH_*.json perf-trajectory shape:
//
//   { "bench": "tuner",
//     "results": [ {"name": ..., "value": ..., "unit": ...}, ... ] }
//
// CRITTER_BENCH_JSON overrides the output path (default BENCH_tuner.json);
// CRITTER_BENCH_CONFIGS (default 12) and CRITTER_BENCH_SAMPLES (default 2)
// scale the sweep; CRITTER_BENCH_WORKERS (default 4) sizes the pool;
// CRITTER_BENCH_SHARDS (default 2) sizes the sharded-executor runs, which
// compare the in-process fold against one worker process per shard
// (spawn + run-directory snapshot exchange included in the wall time).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/fsio.hpp"
#include "dist/executor.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dist = critter::dist;
namespace tune = critter::tune;
namespace util = critter::util;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bench::BenchJson g_json;

struct SweepStat {
  double rate;
  double secs;
  // Sharded runs only: the exchange transport cost run_sharded surfaced.
  std::int64_t exchange_bytes = 0;
  int exchange_rounds = 0;
};

SweepStat sweep_rate(const tune::Study& study, const tune::TuneOptions& opt,
                     util::Table& t, const char* name) {
  const double t0 = now_s();
  const tune::TuneResult r = tune::run_study(study, opt);
  const double secs = now_s() - t0;
  const double rate = static_cast<double>(r.evaluated_configs) / secs;
  t.row({name, tune::sweep_mode_name(r.mode),
         std::to_string(r.effective_workers),
         util::Table::num(secs, 3), util::Table::num(rate, 2)});
  g_json.add(std::string(name) + "_configs_per_sec", rate, "configs/s");
  return {rate, secs};
}

SweepStat sharded_rate(const tune::Study& study, const tune::TuneOptions& opt,
                       int shards, dist::ShardExecutor& exec,
                       int exchange_every, util::Table& t, const char* name) {
  const double t0 = now_s();
  const tune::TuneResult r = dist::run_sharded(
      study, opt, shards, exec, dist::ExchangePolicy{exchange_every});
  const double secs = now_s() - t0;
  const double rate = static_cast<double>(r.evaluated_configs) / secs;
  t.row({name, r.executor + " x" + std::to_string(r.shards),
         std::to_string(r.effective_workers), util::Table::num(secs, 3),
         util::Table::num(rate, 2)});
  g_json.add(std::string(name) + "_configs_per_sec", rate, "configs/s");
  return {rate, secs, r.exchange_bytes, r.exchange_rounds};
}

}  // namespace

int main(int argc, char** argv) {
  // The subprocess-executor benchmark re-execs this binary per shard.
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  const int nconf = static_cast<int>(util::env_int("CRITTER_BENCH_CONFIGS", 12));
  const int samples = static_cast<int>(util::env_int("CRITTER_BENCH_SAMPLES", 2));
  const int workers = static_cast<int>(util::env_int("CRITTER_BENCH_WORKERS", 4));
  const int shards = static_cast<int>(util::env_int("CRITTER_BENCH_SHARDS", 2));

  auto study = tune::slate_cholesky_study(false);
  if (nconf < static_cast<int>(study.configs.size()))
    study.configs.resize(nconf);

  tune::TuneOptions shared;
  shared.policy = critter::Policy::OnlinePropagation;
  shared.tolerance = 0.25;
  shared.samples = samples;
  shared.reset_per_config = false;  // Capital-style persistent statistics

  util::Table t("Tuner sweep throughput: " + study.name + ", " +
                std::to_string(study.configs.size()) + " configurations");
  t.header({"sweep", "mode", "workers", "wall(s)", "configs/s"});

  // 1. Serial shared-statistics sweep: the baseline every shared sweep was
  //    forced onto before the batch-shared path existed.
  const SweepStat serial = sweep_rate(study, shared, t, "serial_shared");

  // 2. Isolated-parallel sweep (statistics reset per configuration).
  tune::TuneOptions isolated = shared;
  isolated.reset_per_config = true;
  isolated.workers = workers;
  const SweepStat iso = sweep_rate(study, isolated, t, "isolated_parallel");

  // 3. Batch-shared sweep at one worker: identical results to (4) by the
  //    determinism contract, so (4)/(3) isolates the parallelization gain
  //    from the batch-semantics difference against (1).
  tune::TuneOptions batched = shared;
  batched.batch = workers;
  batched.workers = 1;
  const SweepStat bs1 = sweep_rate(study, batched, t, "batch_shared_serial");

  // 4. Batch-shared parallel sweep: shared statistics, deterministic at
  //    this batch size for any worker count.
  batched.workers = workers;
  const SweepStat bsp = sweep_rate(study, batched, t, "batch_shared_parallel");

  // 5. The same path carrying the eager policy (the sweep the paper gains
  //    most from, previously hard-serialized).
  tune::TuneOptions eager = batched;
  eager.policy = critter::Policy::EagerPropagation;
  sweep_rate(study, eager, t, "batch_shared_eager");

  // 6./7. Sharded shared-statistics sweeps through the distributed
  //    executors: the in-process fold vs one worker process per shard
  //    (fork/exec + run-directory snapshot exchange included), exchanging
  //    deltas every other batch.  On a 1-core host the subprocess ratio
  //    reads as protocol overhead; on multi-core hosts the shard processes
  //    run concurrently and the ratio scales with the shard count.
  dist::InProcessExecutor inproc;
  const SweepStat shard_in =
      sharded_rate(study, shared, shards, inproc, 2, t, "sharded_in_process");
  dist::SubprocessExecutor subproc;
  const SweepStat shard_sub = sharded_rate(study, shared, shards, subproc, 2,
                                           t, "sharded_subprocess");
  // The store traffic one exchange round costs with the sparse delta
  // encoding (published deltas + live peer reads, fleet-wide).
  if (shard_sub.exchange_rounds > 0)
    g_json.add("bytes_per_exchange_round",
               static_cast<double>(shard_sub.exchange_bytes) /
                   static_cast<double>(shard_sub.exchange_rounds),
               "bytes");

  // 7b. The subprocess sweep again with per-batch checkpointing — the most
  //    aggressive fault-tolerance setting, so (7)/(7b) bounds the price of
  //    crash recoverability (serialize + checksum + atomic publish every
  //    batch).  Same results by the resume contract (DESIGN.md §10).
  dist::SubprocessOptions ckpt_opts;
  ckpt_opts.fault.checkpoint_every = 1;
  dist::SubprocessExecutor subproc_ckpt(std::move(ckpt_opts));
  const SweepStat shard_ckpt = sharded_rate(study, shared, shards,
                                            subproc_ckpt, 2, t,
                                            "sharded_subprocess_ckpt");

  // 7c. The tuner daemon (DESIGN.md §12): the identical shared sweep
  //    through the ask/tell service — an in-process daemon journaling a
  //    full checkpoint per tell, one TCP client mirroring the evaluation.
  //    configs/s against (1) prices the whole service stack (framing,
  //    loopback round trips, state shipping both ways, journal publishes);
  //    ask_tell_round_trip_ms is the mean request latency the client saw.
  const std::string daemon_dir = critter::core::make_temp_dir("bench_tunerd");
  {
    critter::serve::TunerDaemon daemon({daemon_dir});
    critter::serve::ClientOptions copt;
    copt.port = daemon.port();
    const double td = now_s();
    critter::serve::TunerClient client(study, shared, "bench", copt);
    const critter::serve::ClientReport rep = client.run();
    const double daemon_secs = now_s() - td;
    const critter::serve::StatusReply st = client.status();
    const double daemon_rate = static_cast<double>(st.evaluated) / daemon_secs;
    const int round_trips = rep.asks + rep.tells;
    const double rt_ms = round_trips > 0
                             ? 1e3 * rep.ask_tell_wall_s / round_trips
                             : 0.0;
    t.row({"daemon_ask_tell", "daemon x1 client", "1",
           util::Table::num(daemon_secs, 3), util::Table::num(daemon_rate, 2)});
    g_json.add("daemon_ask_tell_configs_per_sec", daemon_rate, "configs/s");
    g_json.add("ask_tell_round_trip_ms", rt_ms, "ms");
    // Request-payload bytes the daemon handled per tell: with the
    // dirty-rank transport a tell ships a sparse patch instead of the
    // session's full snapshot, so this tracks the wire win directly.
    g_json.add("bytes_per_tell",
               st.tells > 0 ? static_cast<double>(st.bytes_in) /
                                  static_cast<double>(st.tells)
                            : 0.0,
               "bytes");
    g_json.add("sparse_tells", static_cast<double>(st.sparse_tells),
               "tells");
    // The full-transport counterfactual: one session snapshot per tell.
    // bytes_per_tell / session_state_bytes < 1 is the sparse win.
    g_json.add("session_state_bytes",
               static_cast<double>(client.export_stats().size()), "bytes");
    std::printf("tuner daemon: %d ask/tell round trips, %.3f ms mean "
                "round-trip latency, %lld B in / %lld B out (%lld sparse "
                "tells)\n",
                round_trips, rt_ms,
                static_cast<long long>(st.bytes_in),
                static_cast<long long>(st.bytes_out),
                static_cast<long long>(st.sparse_tells));
    daemon.stop();
  }
  critter::core::remove_dir_tree(daemon_dir);

  // 8. Model-based search: configs-to-best.  Against a statistically
  //    isolated sweep (outcomes independent of evaluation order, so "the
  //    exhaustive best" is the same configuration for every strategy), how
  //    many evaluations does the surrogate need before it first evaluates
  //    the configuration the exhaustive sweep selects?
  tune::TuneOptions isolated_model = shared;
  isolated_model.policy = critter::Policy::ConditionalExecution;
  isolated_model.reset_per_config = true;
  isolated_model.workers = 1;
  const double t0 = now_s();
  const tune::TuneResult exhaustive = tune::run_study(study, isolated_model);
  const double ex_secs = now_s() - t0;
  const int best = exhaustive.best_predicted();
  tune::TuneOptions ei = isolated_model;
  ei.strategy = "surrogate-ei";
  tune::Tuner session(study, ei);
  int configs_to_best = 0;
  bool found = false;
  const double t1 = now_s();
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    session.tell(session.evaluate(batch));
    for (int pos : batch) {
      if (!found) ++configs_to_best;
      found = found || pos == best;  // best is a per_config position
    }
  }
  const double ei_secs = now_s() - t1;
  const int ei_evals = session.result().evaluated_configs;
  // Ratio 0 marks a run whose surrogate never evaluated the exhaustive
  // best — the JSON must not fabricate a win the stdout denies.
  const double to_best_ratio =
      found ? static_cast<double>(exhaustive.evaluated_configs) /
                  static_cast<double>(std::max(configs_to_best, 1))
            : 0.0;
  t.row({"exhaustive_isolated", "serial", "1", util::Table::num(ex_secs, 3),
         util::Table::num(exhaustive.evaluated_configs / ex_secs, 2)});
  t.row({"surrogate_ei", "serial", "1", util::Table::num(ei_secs, 3),
         util::Table::num(ei_evals / std::max(ei_secs, 1e-9), 2)});

  t.print();
  std::printf("\nbatch-shared parallel: %.2fx vs serial, %.2fx vs same-semantics"
              " serial; isolated parallel: %.2fx vs serial\n",
              bsp.rate / serial.rate, bsp.rate / bs1.rate,
              iso.rate / serial.rate);
  if (found)
    std::printf("surrogate-ei: reached the exhaustive best (config %d) after "
                "%d/%d evaluations — %.2fx fewer configs than the exhaustive "
                "sweep\n",
                best, configs_to_best, ei_evals, to_best_ratio);
  else
    std::printf("surrogate-ei: never reached the exhaustive best (config %d) "
                "in its %d evaluations\n",
                best, ei_evals);
  std::printf("sharded subprocess: %.2fx vs sharded in-process, %.2fx vs "
              "serial; per-batch checkpointing costs %.2fx throughput\n",
              shard_sub.rate / shard_in.rate, shard_sub.rate / serial.rate,
              shard_sub.rate / std::max(shard_ckpt.rate, 1e-9));

  // Checkpoint-overhead decomposition: all three sharded walls cover the
  // same work, so their differences isolate the layers —
  //   shard_in.secs                 sweep + exchange protocol, no processes;
  //   shard_sub.secs - shard_in.secs  fork/exec spawn + file-based protocol;
  //   shard_ckpt.secs - shard_sub.secs  pure checkpoint serialize + write.
  // `checkpoint_overhead` itself stays the with/without-checkpoint
  // throughput ratio (both sides contain identical spawn cost), derived
  // from the named results above rather than ad-hoc locals.
  g_json.add("spawn_protocol_cost_s",
             std::max(shard_sub.secs - shard_in.secs, 0.0), "s");
  g_json.add("checkpoint_write_cost_s",
             std::max(shard_ckpt.secs - shard_sub.secs, 0.0), "s");
  std::printf("sharded decomposition: %.3fs sweep, +%.3fs spawn/protocol, "
              "+%.3fs checkpoint writes\n",
              shard_in.secs, std::max(shard_sub.secs - shard_in.secs, 0.0),
              std::max(shard_ckpt.secs - shard_sub.secs, 0.0));

  g_json.ratio("batch_shared_vs_serial", "batch_shared_parallel_configs_per_sec",
               "serial_shared_configs_per_sec");
  g_json.ratio("batch_parallel_vs_batch_serial",
               "batch_shared_parallel_configs_per_sec",
               "batch_shared_serial_configs_per_sec");
  g_json.ratio("isolated_vs_serial", "isolated_parallel_configs_per_sec",
               "serial_shared_configs_per_sec");
  g_json.ratio("subprocess_vs_in_process_sharded",
               "sharded_subprocess_configs_per_sec",
               "sharded_in_process_configs_per_sec");
  g_json.ratio("checkpoint_overhead", "sharded_subprocess_configs_per_sec",
               "sharded_subprocess_ckpt_configs_per_sec");
  g_json.ratio("daemon_vs_serial", "daemon_ask_tell_configs_per_sec",
               "serial_shared_configs_per_sec");
  // Lower is better: request bytes per tell as a fraction of shipping the
  // full session snapshot every tell (the pre-sparse transport).
  g_json.ratio("bytes_per_tell_vs_full", "bytes_per_tell",
               "session_state_bytes");
  g_json.add("surrogate_configs_to_best",
             static_cast<double>(configs_to_best), "configs");
  g_json.add("surrogate_vs_exhaustive", to_best_ratio, "x");

  g_json.write("tuner", "BENCH_tuner.json");
  return 0;
}
