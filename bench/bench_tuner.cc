// Tuner sweep throughput: configurations/second on the SLATE-Cholesky
// study for the three sweep modes —
//
//   serial               one store, configurations in sequence (PR-1
//                        behavior for every shared-statistics sweep);
//   isolated-parallel    reset_per_config sweep on a worker pool
//                        (bit-identical to its serial counterpart);
//   batch-shared-parallel the statistics-lifecycle path: workers evaluate
//                        batches against a shared snapshot and merge deltas
//                        at a barrier (eager/persistent/extrapolate sweeps
//                        no longer fall back to serial).
//
// Emits a human-readable table and the BENCH_*.json perf-trajectory shape:
//
//   { "bench": "tuner",
//     "results": [ {"name": ..., "value": ..., "unit": ...}, ... ] }
//
// CRITTER_BENCH_JSON overrides the output path (default BENCH_tuner.json);
// CRITTER_BENCH_CONFIGS (default 12) and CRITTER_BENCH_SAMPLES (default 2)
// scale the sweep; CRITTER_BENCH_WORKERS (default 4) sizes the pool;
// CRITTER_BENCH_SHARDS (default 2) sizes the sharded-executor runs, which
// compare the in-process fold against one worker process per shard
// (spawn + run-directory snapshot exchange included in the wall time).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dist/executor.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dist = critter::dist;
namespace tune = critter::tune;
namespace util = critter::util;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Result {
  std::string name;
  double value;
  std::string unit;
};

std::vector<Result> g_results;

double sweep_rate(const tune::Study& study, const tune::TuneOptions& opt,
                  util::Table& t, const char* name) {
  const double t0 = now_s();
  const tune::TuneResult r = tune::run_study(study, opt);
  const double secs = now_s() - t0;
  const double rate = static_cast<double>(r.evaluated_configs) / secs;
  t.row({name, tune::sweep_mode_name(r.mode),
         std::to_string(r.effective_workers),
         util::Table::num(secs, 3), util::Table::num(rate, 2)});
  g_results.push_back({std::string(name) + "_configs_per_sec", rate,
                       "configs/s"});
  return rate;
}

double sharded_rate(const tune::Study& study, const tune::TuneOptions& opt,
                    int shards, dist::ShardExecutor& exec, int exchange_every,
                    util::Table& t, const char* name) {
  const double t0 = now_s();
  const tune::TuneResult r = dist::run_sharded(
      study, opt, shards, exec, dist::ExchangePolicy{exchange_every});
  const double secs = now_s() - t0;
  const double rate = static_cast<double>(r.evaluated_configs) / secs;
  t.row({name, r.executor + " x" + std::to_string(r.shards),
         std::to_string(r.effective_workers), util::Table::num(secs, 3),
         util::Table::num(rate, 2)});
  g_results.push_back({std::string(name) + "_configs_per_sec", rate,
                       "configs/s"});
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  // The subprocess-executor benchmark re-execs this binary per shard.
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  const int nconf = static_cast<int>(util::env_int("CRITTER_BENCH_CONFIGS", 12));
  const int samples = static_cast<int>(util::env_int("CRITTER_BENCH_SAMPLES", 2));
  const int workers = static_cast<int>(util::env_int("CRITTER_BENCH_WORKERS", 4));
  const int shards = static_cast<int>(util::env_int("CRITTER_BENCH_SHARDS", 2));

  auto study = tune::slate_cholesky_study(false);
  if (nconf < static_cast<int>(study.configs.size()))
    study.configs.resize(nconf);

  tune::TuneOptions shared;
  shared.policy = critter::Policy::OnlinePropagation;
  shared.tolerance = 0.25;
  shared.samples = samples;
  shared.reset_per_config = false;  // Capital-style persistent statistics

  util::Table t("Tuner sweep throughput: " + study.name + ", " +
                std::to_string(study.configs.size()) + " configurations");
  t.header({"sweep", "mode", "workers", "wall(s)", "configs/s"});

  // 1. Serial shared-statistics sweep: the baseline every shared sweep was
  //    forced onto before the batch-shared path existed.
  const double serial = sweep_rate(study, shared, t, "serial_shared");

  // 2. Isolated-parallel sweep (statistics reset per configuration).
  tune::TuneOptions isolated = shared;
  isolated.reset_per_config = true;
  isolated.workers = workers;
  const double iso = sweep_rate(study, isolated, t, "isolated_parallel");

  // 3. Batch-shared sweep at one worker: identical results to (4) by the
  //    determinism contract, so (4)/(3) isolates the parallelization gain
  //    from the batch-semantics difference against (1).
  tune::TuneOptions batched = shared;
  batched.batch = workers;
  batched.workers = 1;
  const double bs1 = sweep_rate(study, batched, t, "batch_shared_serial");

  // 4. Batch-shared parallel sweep: shared statistics, deterministic at
  //    this batch size for any worker count.
  batched.workers = workers;
  const double bsp = sweep_rate(study, batched, t, "batch_shared_parallel");

  // 5. The same path carrying the eager policy (the sweep the paper gains
  //    most from, previously hard-serialized).
  tune::TuneOptions eager = batched;
  eager.policy = critter::Policy::EagerPropagation;
  sweep_rate(study, eager, t, "batch_shared_eager");

  // 6./7. Sharded shared-statistics sweeps through the distributed
  //    executors: the in-process fold vs one worker process per shard
  //    (fork/exec + run-directory snapshot exchange included), exchanging
  //    deltas every other batch.  On a 1-core host the subprocess ratio
  //    reads as protocol overhead; on multi-core hosts the shard processes
  //    run concurrently and the ratio scales with the shard count.
  dist::InProcessExecutor inproc;
  const double shard_in =
      sharded_rate(study, shared, shards, inproc, 2, t, "sharded_in_process");
  dist::SubprocessExecutor subproc;
  const double shard_sub = sharded_rate(study, shared, shards, subproc, 2, t,
                                        "sharded_subprocess");

  // 7b. The subprocess sweep again with per-batch checkpointing — the most
  //    aggressive fault-tolerance setting, so (7)/(7b) bounds the price of
  //    crash recoverability (serialize + checksum + atomic publish every
  //    batch).  Same results by the resume contract (DESIGN.md §10).
  dist::SubprocessOptions ckpt_opts;
  ckpt_opts.fault.checkpoint_every = 1;
  dist::SubprocessExecutor subproc_ckpt(std::move(ckpt_opts));
  const double shard_ckpt = sharded_rate(study, shared, shards, subproc_ckpt,
                                         2, t, "sharded_subprocess_ckpt");

  // 8. Model-based search: configs-to-best.  Against a statistically
  //    isolated sweep (outcomes independent of evaluation order, so "the
  //    exhaustive best" is the same configuration for every strategy), how
  //    many evaluations does the surrogate need before it first evaluates
  //    the configuration the exhaustive sweep selects?
  tune::TuneOptions isolated_model = shared;
  isolated_model.policy = critter::Policy::ConditionalExecution;
  isolated_model.reset_per_config = true;
  isolated_model.workers = 1;
  const double t0 = now_s();
  const tune::TuneResult exhaustive = tune::run_study(study, isolated_model);
  const double ex_secs = now_s() - t0;
  const int best = exhaustive.best_predicted();
  tune::TuneOptions ei = isolated_model;
  ei.strategy = "surrogate-ei";
  tune::Tuner session(study, ei);
  int configs_to_best = 0;
  bool found = false;
  const double t1 = now_s();
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    session.tell(session.evaluate(batch));
    for (int pos : batch) {
      if (!found) ++configs_to_best;
      found = found || pos == best;  // best is a per_config position
    }
  }
  const double ei_secs = now_s() - t1;
  const int ei_evals = session.result().evaluated_configs;
  // Ratio 0 marks a run whose surrogate never evaluated the exhaustive
  // best — the JSON must not fabricate a win the stdout denies.
  const double to_best_ratio =
      found ? static_cast<double>(exhaustive.evaluated_configs) /
                  static_cast<double>(std::max(configs_to_best, 1))
            : 0.0;
  t.row({"exhaustive_isolated", "serial", "1", util::Table::num(ex_secs, 3),
         util::Table::num(exhaustive.evaluated_configs / ex_secs, 2)});
  t.row({"surrogate_ei", "serial", "1", util::Table::num(ei_secs, 3),
         util::Table::num(ei_evals / std::max(ei_secs, 1e-9), 2)});

  t.print();
  std::printf("\nbatch-shared parallel: %.2fx vs serial, %.2fx vs same-semantics"
              " serial; isolated parallel: %.2fx vs serial\n",
              bsp / serial, bsp / bs1, iso / serial);
  if (found)
    std::printf("surrogate-ei: reached the exhaustive best (config %d) after "
                "%d/%d evaluations — %.2fx fewer configs than the exhaustive "
                "sweep\n",
                best, configs_to_best, ei_evals, to_best_ratio);
  else
    std::printf("surrogate-ei: never reached the exhaustive best (config %d) "
                "in its %d evaluations\n",
                best, ei_evals);
  std::printf("sharded subprocess: %.2fx vs sharded in-process, %.2fx vs "
              "serial; per-batch checkpointing costs %.2fx throughput\n",
              shard_sub / shard_in, shard_sub / serial,
              shard_sub / std::max(shard_ckpt, 1e-9));
  g_results.push_back({"batch_shared_vs_serial", bsp / serial, "x"});
  g_results.push_back({"batch_parallel_vs_batch_serial", bsp / bs1, "x"});
  g_results.push_back({"isolated_vs_serial", iso / serial, "x"});
  g_results.push_back({"subprocess_vs_in_process_sharded",
                       shard_sub / shard_in, "x"});
  g_results.push_back({"checkpoint_overhead",
                       shard_sub / std::max(shard_ckpt, 1e-9), "x"});
  g_results.push_back({"surrogate_configs_to_best",
                       static_cast<double>(configs_to_best), "configs"});
  g_results.push_back({"surrogate_vs_exhaustive", to_best_ratio, "x"});

  const char* path = std::getenv("CRITTER_BENCH_JSON");
  const std::string out = path ? path : "BENCH_tuner.json";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"tuner\",\n  \"results\": [\n");
    for (std::size_t i = 0; i < g_results.size(); ++i)
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
                   g_results[i].name.c_str(), g_results[i].value,
                   g_results[i].unit.c_str(),
                   i + 1 < g_results.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
