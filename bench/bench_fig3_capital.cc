// Reproduces Fig. 3a (BSP communication vs synchronization), Fig. 3e
// (BSP computation vs synchronization), and Fig. 3i (execution times) for
// Capital's Cholesky factorization configuration space.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::capital_cholesky_study(critter::util::paper_scale());
  std::printf("%s: %d ranks, %d x %d matrix, %zu configurations\n",
              study.name.c_str(), study.nranks, study.n, study.n,
              study.configs.size());
  bench::print_fig3(study, "Fig3a", "Fig3e", "Fig3i");
  return 0;
}
