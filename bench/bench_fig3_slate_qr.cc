// Reproduces Fig. 3d / 3h / 3l for SLATE's QR configuration space.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::slate_qr_study(critter::util::paper_scale());
  std::printf("%s: %d ranks, %d x %d matrix, %zu configurations\n",
              study.name.c_str(), study.nranks, study.m, study.n,
              study.configs.size());
  bench::print_fig3(study, "Fig3d", "Fig3h", "Fig3l");
  return 0;
}
