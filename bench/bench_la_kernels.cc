// google-benchmark micro-suite over the mini-BLAS/LAPACK kernels: validates
// that the gamma (time-per-flop) constant of the machine model is in a
// sane range for the reference kernels and tracks their host throughput.
#include <benchmark/benchmark.h>

#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/matrix.hpp"
#include "la/tile_qr.hpp"

namespace la = critter::la;

static void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = la::random_matrix(n, n, 1), b = la::random_matrix(n, n, 2),
             c(n, n);
  for (auto _ : state) {
    la::gemm(la::Trans::N, la::Trans::N, n, n, n, 1.0, a.data(), n, b.data(),
             n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemm_flops(n, n, n)));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

static void BM_Potrf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a0 = la::random_spd(n, 3);
  for (auto _ : state) {
    la::Matrix a = a0;
    benchmark::DoNotOptimize(la::potrf(la::Uplo::Lower, n, a.data(), n));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::potrf_flops(n)));
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128);

static void BM_Geqrf(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = m / 2;
  la::Matrix a0 = la::random_matrix(m, n, 4);
  std::vector<double> tau(n);
  for (auto _ : state) {
    la::Matrix a = a0;
    la::geqrf(m, n, a.data(), m, tau.data(), 16);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::geqrf_flops(m, n)));
}
BENCHMARK(BM_Geqrf)->Arg(64)->Arg(128);

static void BM_Tpqrt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix r0 = la::random_matrix(n, n, 5);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) r0(i, j) = 0.0;
  la::Matrix b0 = la::random_matrix(n, n, 6);
  la::Matrix t(n, n);
  for (auto _ : state) {
    la::Matrix r = r0, b = b0;
    la::tpqrt(n, n, 0, r.data(), n, b.data(), n, t.data(), n);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Tpqrt)->Arg(32)->Arg(64);

static void BM_Trsm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  la::Matrix a = la::random_matrix(n, n, 7);
  for (int i = 0; i < n; ++i) a(i, i) += n;
  la::Matrix b0 = la::random_matrix(n, n, 8);
  for (auto _ : state) {
    la::Matrix b = b0;
    la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::N, la::Diag::NonUnit,
             n, n, 1.0, a.data(), n, b.data(), n);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(la::trsm_flops(la::Side::Left, n, n)));
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128);

BENCHMARK_MAIN();
