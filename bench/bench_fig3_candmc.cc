// Reproduces Fig. 3c / 3g / 3k for CANDMC's QR configuration space.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::candmc_qr_study(critter::util::paper_scale());
  std::printf("%s: %d ranks, %d x %d matrix, %zu configurations\n",
              study.name.c_str(), study.nranks, study.m, study.n,
              study.configs.size());
  bench::print_fig3(study, "Fig3c", "Fig3g", "Fig3k");
  return 0;
}
