// Reproduces Fig. 5a (tuning time), Fig. 5c (selectively-executed kernel
// time), Fig. 5e (mean log exec-time error), and Fig. 5g
// (per-configuration exec-time error) for CANDMC's QR.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::candmc_qr_study(critter::util::paper_scale());
  std::printf("%s autotuning: %d ranks, %d x %d, %zu configurations\n",
              study.name.c_str(), study.nranks, study.m, study.n,
              study.configs.size());
  const auto rows = bench::sweep(study, /*with_eager=*/false,
                                 /*reset_per_config=*/true);
  bench::print_tuning_time(rows, "Fig5a", study.name);
  bench::print_kernel_time(rows, "Fig5c", study.name);
  bench::print_mean_log_err(rows, "Fig5e", study.name, "exec-time");
  bench::print_per_config_error(study, "Fig5g", {0.5, 0.25, 0.125, 0.0625},
                                /*reset_per_config=*/true,
                                /*comp_time=*/false);
  return 0;
}
