// Reproduces Fig. 4b (tuning time), Fig. 4c (selectively-executed kernel
// time), Fig. 4d (mean log comp-time prediction error), Fig. 4f (mean log
// exec-time prediction error), and Fig. 4h (per-configuration comp-time
// error) for SLATE's Cholesky.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::slate_cholesky_study(critter::util::paper_scale());
  std::printf("%s autotuning: %d ranks, n=%d, %zu configurations\n",
              study.name.c_str(), study.nranks, study.n, study.configs.size());
  const auto rows = bench::sweep(study, /*with_eager=*/false,
                                 /*reset_per_config=*/true);
  bench::print_tuning_time(rows, "Fig4b", study.name);
  bench::print_kernel_time(rows, "Fig4c", study.name);
  bench::print_mean_log_err(rows, "Fig4d", study.name, "comp-time");
  bench::print_mean_log_err(rows, "Fig4f", study.name, "exec-time");
  bench::print_per_config_error(study, "Fig4h",
                                {0.0625, 0.03125, 0.015625, 0.0078125},
                                /*reset_per_config=*/true,
                                /*comp_time=*/true);
  return 0;
}
