// Reproduces Fig. 5b (tuning time), Fig. 5d (mean log kernel exec-time
// error), Fig. 5f (mean log exec-time error), and Fig. 5h
// (per-configuration comp-time kernel error) for SLATE's QR.
#include "bench_common.hpp"

int main() {
  const auto study = bench::tune::slate_qr_study(critter::util::paper_scale());
  std::printf("%s autotuning: %d ranks, %d x %d, %zu configurations\n",
              study.name.c_str(), study.nranks, study.m, study.n,
              study.configs.size());
  const auto rows = bench::sweep(study, /*with_eager=*/false,
                                 /*reset_per_config=*/true);
  bench::print_tuning_time(rows, "Fig5b", study.name);
  bench::print_mean_log_err(rows, "Fig5d", study.name, "comp-time");
  bench::print_mean_log_err(rows, "Fig5f", study.name, "exec-time");
  bench::print_per_config_error(study, "Fig5h",
                                {0.125, 0.0625, 0.03125, 0.015625},
                                /*reset_per_config=*/true,
                                /*comp_time=*/true);
  return 0;
}
