#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE FRESH METRIC [METRIC ...]

Fails (exit 1) if any named metric in FRESH is below MIN_RATIO times the
baseline value — i.e. a >20% regression at the default MIN_RATIO of 0.8.
Override the threshold with --min-ratio=0.9 before the file arguments.

Metrics are higher-is-better by default (throughput, speedup ratios).
Suffix a metric with ":lower" for lower-is-better values (latencies,
overhead ratios): the same MIN_RATIO floor then applies to the inverted
ratio baseline/fresh, so a fresh value more than 1/MIN_RATIO times the
baseline fails.

Both files are the BenchJson shape emitted by the bench binaries:

    { "bench": ..., "host": {...}, "results": [{"name", "value", "unit"}] }

The host block is printed for both sides so a cross-host comparison (e.g.
a baseline recorded on a 1-core container checked on a many-core CI
runner) is visible in the log rather than silently misleading.
"""

import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    values = {r["name"]: r["value"] for r in doc.get("results", [])}
    return doc.get("host", {}), values


def main(argv):
    min_ratio = 0.8
    args = []
    for a in argv[1:]:
        if a.startswith("--min-ratio="):
            min_ratio = float(a.split("=", 1)[1])
        else:
            args.append(a)
    if len(args) < 3:
        sys.stderr.write(__doc__)
        return 2

    baseline_path, fresh_path, metrics = args[0], args[1], args[2:]
    base_host, base = load_results(baseline_path)
    fresh_host, fresh = load_results(fresh_path)
    print(f"baseline {baseline_path}: host={base_host}")
    print(f"fresh    {fresh_path}: host={fresh_host}")

    failed = []
    for spec in metrics:
        name, _, direction = spec.partition(":")
        lower_is_better = direction == "lower"
        if name not in base:
            print(f"FAIL {name}: missing from baseline {baseline_path}")
            failed.append(name)
            continue
        if name not in fresh:
            print(f"FAIL {name}: missing from fresh {fresh_path}")
            failed.append(name)
            continue
        b, f = base[name], fresh[name]
        if lower_is_better:
            ratio = b / f if f else float("inf")
        else:
            ratio = f / b if b else float("inf")
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        arrow = "lower" if lower_is_better else "higher"
        print(f"{verdict:4s} {name} ({arrow}-is-better): baseline={b:.6g} "
              f"fresh={f:.6g} ratio={ratio:.3f} (floor {min_ratio:.2f})")
        if ratio < min_ratio:
            failed.append(name)

    if failed:
        print(f"perf regression in: {', '.join(failed)}")
        return 1
    print("no perf regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
