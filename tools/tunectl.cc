// tunectl: the tuner-daemon control CLI (DESIGN.md §12.5).
//
//   tunectl serve    --state-dir=DIR [--port=N]
//   tunectl tune     --session=S [--connect=H:P | --state-dir=DIR]
//                    [--workload=NAME] [--strategy=SPEC] [--policy=P]
//                    [--tolerance=X] [--samples=N] [--workers=N] [--batch=N]
//                    [--prior=FILE] [--max-batches=N] [--drop-after-asks=N]
//   tunectl status   --session=S [--json] [--connect=H:P | --state-dir=DIR]
//   tunectl watch    --session=S [--interval-ms=N] [--polls=N] [--json]
//                    [--connect=H:P | --state-dir=DIR]
//   tunectl export   --session=S --out=FILE [--connect=H:P | --state-dir=DIR]
//   tunectl shutdown [--connect=H:P | --state-dir=DIR]
//
// `serve` runs the daemon in the foreground until SIGTERM/SIGINT (both
// flush every session) or a client's shutdown request.  `tune` joins a
// session as an evaluating client — run several concurrently to fan one
// sweep across processes or machines; --drop-after-asks=N injects the
// disconnect-mid-batch fault (the claim must re-issue to surviving
// clients).  `status`/`export`/`shutdown` speak to existing sessions
// without opening one, so they need no study flags.  `status --json`
// emits one machine-readable object embedding the daemon's process-wide
// metrics snapshot (DESIGN.md §14); `watch` polls status every
// --interval-ms (default 1000) until the sweep is done or --polls polls
// have run (0 = forever).  --state-dir instead of --connect reads the
// daemon's published port file.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/fsio.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"

namespace net = critter::net;
namespace serve = critter::serve;
namespace tune = critter::tune;

namespace {

critter::Policy parse_policy(const std::string& s) {
  if (s == "conditional") return critter::Policy::ConditionalExecution;
  if (s == "eager") return critter::Policy::EagerPropagation;
  if (s == "local") return critter::Policy::LocalPropagation;
  if (s == "online") return critter::Policy::OnlinePropagation;
  if (s == "apriori") return critter::Policy::AprioriPropagation;
  std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
  std::exit(1);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: tunectl <serve|tune|status|export|shutdown> [--flags]\n"
      "  serve    --state-dir=DIR [--port=N]\n"
      "  tune     --session=S [--connect=H:P | --state-dir=DIR] "
      "[--workload=NAME]\n"
      "           [--strategy=SPEC] [--policy=P] [--tolerance=X] "
      "[--samples=N]\n"
      "           [--workers=N] [--batch=N] [--prior=FILE] "
      "[--max-batches=N]\n"
      "           [--drop-after-asks=N]\n"
      "  status   --session=S [--json] [--connect=H:P | --state-dir=DIR]\n"
      "  watch    --session=S [--interval-ms=N] [--polls=N] [--json]\n"
      "           [--connect=H:P | --state-dir=DIR]\n"
      "  export   --session=S --out=FILE [--connect=H:P | --state-dir=DIR]\n"
      "  shutdown [--connect=H:P | --state-dir=DIR]\n");
  return 2;
}

net::Address resolve_daemon(const critter::util::Options& opt) {
  const std::string connect = opt.get("connect", "");
  if (!connect.empty()) return net::parse_address(connect);
  const std::string state_dir = opt.get("state-dir", "");
  if (state_dir.empty()) {
    std::fprintf(stderr, "need --connect=HOST:PORT or --state-dir=DIR\n");
    std::exit(2);
  }
  return {"127.0.0.1", serve::read_daemon_port(state_dir)};
}

/// Sessionless verbs go over a raw framed connection — no OPEN, so no
/// study flags needed to inspect or stop a running daemon.
net::Frame raw_request(const net::Address& addr, std::uint32_t verb,
                       const std::string& payload) {
  net::Connection conn = net::Connection::connect(addr.host, addr.port, 10.0);
  net::send_frame(conn, net::kHello, serve::kTuneService, 30.0);
  net::Frame hello = net::recv_frame(conn, 30.0);
  if (hello.verb != net::kOk)
    throw std::runtime_error("handshake rejected: " + hello.payload);
  net::send_frame(conn, verb, payload, 30.0);
  net::Frame reply = net::recv_frame(conn, 30.0);
  if (reply.verb == net::kErr)
    throw std::runtime_error("daemon error: " + reply.payload);
  return reply;
}

int cmd_serve(const critter::util::Options& opt) {
  const std::string state_dir = opt.get("state-dir", "");
  if (state_dir.empty()) return usage();
  const std::string sd = "--state-dir=" + state_dir;
  const std::string pt = "--port=" + std::to_string(opt.get_int("port", 0));
  // Route through the canonical entry point so SIGTERM/SIGINT flush
  // every session exactly as a daemonized run would.
  const char* argv[] = {"tunectl", "--tuner-daemon", sd.c_str(), pt.c_str()};
  return serve::tuner_daemon_main(4, const_cast<char**>(argv));
}

int cmd_tune(const critter::util::Options& opt) {
  const net::Address addr = resolve_daemon(opt);
  tune::TuneOptions topt;
  topt.policy = parse_policy(opt.get("policy", "online"));
  topt.tolerance = opt.get_double("tolerance", 0.125);
  topt.samples = static_cast<int>(opt.get_int("samples", 2));
  topt.workers = static_cast<int>(opt.get_int("workers", 1));
  topt.batch = static_cast<int>(opt.get_int("batch", 0));
  std::tie(topt.strategy, topt.strategy_options) =
      tune::parse_strategy_spec(opt.get("strategy", "exhaustive"));
  topt.prior_file = opt.get("prior", "");
  const tune::Study study = tune::workload_study(
      opt.get("workload", "capital-cholesky"), critter::util::paper_scale());

  serve::ClientOptions copt;
  copt.host = addr.host;
  copt.port = addr.port;
  copt.max_batches = static_cast<int>(opt.get_int("max-batches", 0));
  copt.drop_after_asks =
      static_cast<int>(opt.get_int("drop-after-asks", 0));
  serve::TunerClient client(study, topt,
                            opt.get("session", study.name), copt);
  const serve::ClientReport rep = client.run();
  std::printf("%s: %d asks, %d tells%s%s%s\n",
              rep.done ? "sweep complete" : "client done", rep.asks,
              rep.tells, rep.dropped ? " (dropped mid-claim)" : "",
              rep.reconnects > 0
                  ? (", " + std::to_string(rep.reconnects) + " reconnects")
                        .c_str()
                  : "",
              rep.done ? "" : " (sweep still open)");
  if (rep.dropped) return 0;
  const serve::StatusReply st = client.status();
  std::printf("%s\n", st.text.c_str());
  if (st.done && st.best_predicted >= 0)
    std::printf("selected config %d (%s)\n", st.best_predicted,
                study.configs[static_cast<std::size_t>(st.best_predicted)]
                    .label()
                    .c_str());
  return 0;
}

serve::StatusReply fetch_status(const net::Address& addr,
                                const std::string& session) {
  const net::Frame reply = raw_request(addr, net::kTuneStatus,
                                       serve::encode_session_ref(session));
  return serve::decode_status_reply(reply.payload);
}

/// One stable JSON object per status poll: the decoded per-session fields,
/// this process's socket-layer wire counters, and the daemon's own
/// metrics_json() snapshot verbatim under "daemon_metrics" (null when the
/// daemon predates protocol v3 fields).  Session names are charset-checked
/// by the daemon, so no string escaping is needed.
void print_status_json(const std::string& session,
                       const serve::StatusReply& st) {
  const net::WireCounters wc = net::wire_counters();
  std::printf(
      "{\"session\":\"%s\",\"done\":%s,\"tells\":%d,\"evaluated\":%d,"
      "\"best_predicted\":%d,\"bytes_in\":%lld,\"bytes_out\":%lld,"
      "\"sparse_tells\":%lld,"
      "\"client_wire\":{\"bytes_sent\":%llu,\"bytes_received\":%llu,"
      "\"frames_sent\":%llu,\"frames_received\":%llu},"
      "\"daemon_metrics\":%s}\n",
      session.c_str(), st.done ? "true" : "false", st.tells, st.evaluated,
      st.best_predicted, static_cast<long long>(st.bytes_in),
      static_cast<long long>(st.bytes_out),
      static_cast<long long>(st.sparse_tells),
      static_cast<unsigned long long>(wc.bytes_sent),
      static_cast<unsigned long long>(wc.bytes_received),
      static_cast<unsigned long long>(wc.frames_sent),
      static_cast<unsigned long long>(wc.frames_received),
      st.metrics.empty() ? "null" : st.metrics.c_str());
}

int cmd_status(const critter::util::Options& opt) {
  const std::string session = opt.get("session", "");
  if (session.empty()) return usage();
  const serve::StatusReply st = fetch_status(resolve_daemon(opt), session);
  if (opt.has("json")) {
    print_status_json(session, st);
    return 0;
  }
  std::printf("%s\n", st.text.c_str());
  // This process's side of the conversation, from the socket-layer wire
  // accounting — the round trip above is all the traffic we generated.
  const net::WireCounters wc = net::wire_counters();
  std::printf("client wire: %llu B sent / %llu B received (%llu/%llu "
              "frames)\n",
              static_cast<unsigned long long>(wc.bytes_sent),
              static_cast<unsigned long long>(wc.bytes_received),
              static_cast<unsigned long long>(wc.frames_sent),
              static_cast<unsigned long long>(wc.frames_received));
  return 0;
}

int cmd_watch(const critter::util::Options& opt) {
  const std::string session = opt.get("session", "");
  if (session.empty()) return usage();
  const net::Address addr = resolve_daemon(opt);
  const auto interval =
      static_cast<int>(opt.get_int("interval-ms", 1000));
  const auto max_polls = static_cast<int>(opt.get_int("polls", 0));
  const bool json = opt.has("json");
  for (int poll = 0;; ++poll) {
    const serve::StatusReply st = fetch_status(addr, session);
    if (json)
      print_status_json(session, st);
    else
      std::printf("%s\n", st.text.c_str());
    std::fflush(stdout);
    if (st.done) {
      if (!json) std::printf("sweep complete\n");
      return 0;
    }
    if (max_polls > 0 && poll + 1 >= max_polls) return 0;
    critter::core::sleep_ms(interval);
  }
}

int cmd_export(const critter::util::Options& opt) {
  const std::string session = opt.get("session", "");
  const std::string out = opt.get("out", "");
  if (session.empty() || out.empty()) return usage();
  const net::Frame reply =
      raw_request(resolve_daemon(opt), net::kTuneExport,
                  serve::encode_session_ref(session));
  critter::core::write_file_atomic(out, reply.payload);
  std::printf("exported %zu bytes of session '%s' statistics to %s\n",
              reply.payload.size(), session.c_str(), out.c_str());
  return 0;
}

int cmd_shutdown(const critter::util::Options& opt) {
  raw_request(resolve_daemon(opt), net::kTuneShutdown, "");
  std::printf("daemon acknowledged shutdown\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (serve::is_tuner_daemon(argc, argv))
    return serve::tuner_daemon_main(argc, argv);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  critter::util::Options opt(argc - 1, argv + 1);
  try {
    if (cmd == "serve") return cmd_serve(opt);
    if (cmd == "tune") return cmd_tune(opt);
    if (cmd == "status") return cmd_status(opt);
    if (cmd == "watch") return cmd_watch(opt);
    if (cmd == "export") return cmd_export(opt);
    if (cmd == "shutdown") return cmd_shutdown(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tunectl %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
