// Regenerates the golden bit-identity fixtures under tests/golden/.
//
// The fixtures pin the *statistics content* (not acceleration structures)
// of three deterministic SLATE-Cholesky sweeps; see tests/golden_digest.hpp
// for exactly what is digested.  They were produced by the pre-arena,
// pre-fast-path build and must only ever be regenerated on purpose — a
// performance refactor that changes these digests has broken the
// determinism contract (DESIGN.md §6/§11), not "updated a baseline".
//
// Usage: gen_golden <output-dir>
#include <cstdio>
#include <string>

#include "../tests/golden_digest.hpp"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/golden";
  for (const char* which : {"online", "eager", "batch"}) {
    const std::string digest = critter::testing::golden_digest(which);
    const std::string path = dir + "/sweep_" + which + ".digest";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fwrite(digest.data(), 1, digest.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), digest.size());
  }
  return 0;
}
