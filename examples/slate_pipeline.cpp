// SLATE-style task pipelining under the profiler:
//
//   ./slate_pipeline [--n=2048] [--tile=128]
//
// Runs the tile Cholesky twice — without and with lookahead — at model
// scale and prints the critical-path profile of each, demonstrating how
// the pipeline shortens the schedule while the BSP costs stay identical
// (the paper's Fig. 3b/3f trade-off axis).
#include <cstdio>

#include "core/profiler.hpp"
#include "sim/api.hpp"
#include "slate/slate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sim = critter::sim;
namespace sl = critter::slate;

namespace {

critter::Report run(int n, int tile, int lookahead) {
  critter::Config cfg;
  cfg.selective = false;
  critter::Store store(16, cfg);
  sim::Engine engine(16, sim::Machine::knl_like());
  critter::Report rep;
  engine.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    sl::Grid2D g = sl::Grid2D::build(4, 4);
    sl::TileMatrix a(n, n, tile, g, /*real=*/false);
    sl::potrf(a, sl::PotrfConfig{lookahead});
    critter::Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  critter::util::Options opt(argc, argv);
  const int n = static_cast<int>(opt.get_int("n", 2048));
  const int tile = static_cast<int>(opt.get_int("tile", 128));

  critter::util::Table t("SLATE tile Cholesky: lookahead pipelining");
  t.header({"lookahead", "wall(s)", "cp-exec(s)", "cp-comp(s)", "cp-comm(s)",
            "supersteps"});
  for (int d : {0, 1}) {
    critter::Report r = run(n, tile, d);
    t.row({std::to_string(d), critter::util::Table::num(r.wall_time, 6),
           critter::util::Table::num(r.critical.exec_time, 6),
           critter::util::Table::num(r.critical.comp_time, 6),
           critter::util::Table::num(r.critical.comm_time, 6),
           critter::util::Table::num(r.critical.sync_cost, 0)});
  }
  t.print();
  std::printf("\nlookahead overlaps the next panel factorization with the\n"
              "trailing updates; the wall-clock column shrinks while the\n"
              "structural BSP costs are unchanged.\n");
  return 0;
}
