// Autotune any registered workload (default: Capital's 3D Cholesky block
// size and base-case strategy, the paper's first case study) with a policy
// and search strategy of your choice:
//
//   ./autotune_cholesky [--workload=capital-cholesky]
//                       [--strategy=ci-discard,margin=0.1]
//                       [--policy=online] [--tolerance=0.125] [--samples=2]
//                       [--workers=4] [--batch=4]
//                       [--shards=2] [--exchange-every=4]
//                       [--executor=subprocess|in-process]
//                       [--max-retries=N] [--checkpoint-every=B]
//                       [--exchange-strict=0|1]
//                       [--prior=FILE] [--save-stats=FILE]
//
// --help lists the registered workloads and strategies.  Prints the
// per-configuration predictions, the exhaustive-search cost with and
// without selective execution, the selected configuration, and the
// effective sweep mode (serial / parallel-isolated / parallel-batch-shared
// — never a silent fallback).
//
// --save-stats=FILE persists the sweep's final statistics snapshot;
// --prior=FILE feeds one to the model-based strategies — so the transfer
// workflow (tune a small problem, save its snapshot, use it as the prior
// for a large problem) runs end-to-end from the CLI:
//
//   ./autotune_cholesky --save-stats=small.snap
//   CRITTER_PAPER_SCALE=1 ./autotune_cholesky \
//       --strategy=copula-transfer --prior=small.snap
//
// --shards=N fans the sweep across N shards through a dist::ShardExecutor;
// the default executor for N > 1 is "subprocess" (one worker process per
// shard, re-execing this binary via --shard-worker and exchanging
// StatSnapshot files through a run directory).  --exchange-every=B makes
// shards trade statistics deltas every B batches mid-sweep instead of only
// merging at the end.  Subprocess fleets are fault-tolerant:
// --max-retries=N relaunches a crashed or stalled shard worker up to N
// times (with exponential backoff), --checkpoint-every=B makes workers
// publish a recovery checkpoint every B batches so a relaunch resumes
// bit-identically instead of resweeping, and --exchange-strict=0 lets a
// shard skip a peer whose round delta never arrives instead of aborting
// the run.  A recovery summary prints whenever a shard retried, resumed,
// or skipped.
// --serve=DIR turns this binary into a persistent tuner daemon (state and
// session journals under DIR, bound port published to DIR/port);
// --connect=HOST:PORT joins it as an evaluating client instead of sweeping
// locally — several clients on one --session share a single ask/tell
// session and reproduce the in-process sweep bit-identically (tunectl is
// the standalone CLI for the same protocol).
#include <cmath>
#include <cstdio>
#include <string>
#include <tuple>

#include "dist/executor.hpp"
#include "net/socket.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dist = critter::dist;
namespace serve = critter::serve;
namespace tune = critter::tune;

namespace {

critter::Policy parse_policy(const std::string& s) {
  if (s == "conditional") return critter::Policy::ConditionalExecution;
  if (s == "eager") return critter::Policy::EagerPropagation;
  if (s == "local") return critter::Policy::LocalPropagation;
  if (s == "online") return critter::Policy::OnlinePropagation;
  if (s == "apriori") return critter::Policy::AprioriPropagation;
  std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  // Shard-worker re-entry: the subprocess executor re-execs this binary.
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  // Daemon re-entry (--tuner-daemon --state-dir=DIR [--port=N]).
  if (serve::is_tuner_daemon(argc, argv))
    return serve::tuner_daemon_main(argc, argv);
  critter::util::Options opt(argc, argv);
  if (opt.has("help")) {
    std::printf("usage: autotune_cholesky [--workload=NAME] "
                "[--strategy=NAME[,key=val...]]\n"
                "                         [--policy=online] [--tolerance=X] "
                "[--samples=N]\n"
                "                         [--workers=N] [--batch=N]\n"
                "                         [--shards=N] [--exchange-every=B] "
                "[--executor=subprocess|in-process]\n"
                "                         [--max-retries=N] "
                "[--checkpoint-every=B] [--exchange-strict=0|1]\n"
                "                         [--prior=FILE] [--save-stats=FILE]"
                "\n\n%s",
                tune::registry_help().c_str());
    return 0;
  }
  tune::TuneOptions topt;
  topt.policy = parse_policy(opt.get("policy", "online"));
  topt.tolerance = opt.get_double("tolerance", 0.125);
  topt.samples = static_cast<int>(opt.get_int("samples", 2));
  topt.workers = static_cast<int>(opt.get_int("workers", 1));
  topt.batch = static_cast<int>(opt.get_int("batch", 0));
  std::tie(topt.strategy, topt.strategy_options) =
      tune::parse_strategy_spec(opt.get("strategy", "exhaustive"));
  topt.prior_file = opt.get("prior", "");

  // Daemon mode: serve ask/tell sessions instead of sweeping.  Routed
  // through the canonical entry point so SIGTERM/SIGINT flush sessions.
  const std::string serve_dir = opt.get("serve", "");
  if (!serve_dir.empty()) {
    const std::string sd = "--state-dir=" + serve_dir;
    const std::string pt = "--port=" + std::to_string(opt.get_int("port", 0));
    const char* dargv[] = {"autotune_cholesky", "--tuner-daemon", sd.c_str(),
                           pt.c_str()};
    return serve::tuner_daemon_main(4, const_cast<char**>(dargv));
  }

  const tune::Study study = tune::workload_study(
      opt.get("workload", "capital-cholesky"), critter::util::paper_scale());

  // Client mode: join a daemon session as a remote evaluator.
  const std::string connect = opt.get("connect", "");
  if (!connect.empty()) {
    const critter::net::Address addr = critter::net::parse_address(connect);
    serve::ClientOptions copt;
    copt.host = addr.host;
    copt.port = addr.port;
    copt.max_batches = static_cast<int>(opt.get_int("max-batches", 0));
    copt.drop_after_asks =
        static_cast<int>(opt.get_int("drop-after-asks", 0));
    serve::TunerClient client(study, topt, opt.get("session", study.name),
                              copt);
    const serve::ClientReport rep = client.run();
    std::printf("%s: %d asks, %d tells, %d reconnects\n",
                rep.done ? "sweep complete" : "client done", rep.asks,
                rep.tells, rep.reconnects);
    if (!rep.dropped) {
      const serve::StatusReply st = client.status();
      std::printf("%s\n", st.text.c_str());
      if (st.done && st.best_predicted >= 0)
        std::printf(
            "selected config %d (%s)\n", st.best_predicted,
            study.configs[static_cast<std::size_t>(st.best_predicted)]
                .label()
                .c_str());
    }
    return 0;
  }

  std::printf("autotuning %s: %d ranks, n=%d, %zu configurations, policy=%s, "
              "eps=%.4f, strategy=%s\n",
              study.name.c_str(), study.nranks, study.n, study.configs.size(),
              critter::policy_name(topt.policy), topt.tolerance,
              topt.strategy.c_str());

  const int shards = static_cast<int>(opt.get_int("shards", 1));
  dist::ExchangePolicy exchange;
  exchange.every = static_cast<int>(opt.get_int("exchange-every", 0));
  exchange.strict = opt.get_int("exchange-strict", 1) != 0;
  dist::FaultPolicy fault;
  fault.max_retries = static_cast<int>(opt.get_int("max-retries", 0));
  fault.checkpoint_every =
      static_cast<int>(opt.get_int("checkpoint-every", 0));
  const tune::TuneResult r = dist::run_sharded_named(
      study, topt, shards,
      opt.get("executor", shards > 1 ? "subprocess" : "in-process"), exchange,
      fault);

  std::printf("sweep mode: %s, %d/%d workers%s%s%s\n",
              tune::sweep_mode_name(r.mode), r.effective_workers,
              r.requested_workers,
              r.batch > 0 ? (", batch " + std::to_string(r.batch)).c_str() : "",
              r.fallback_reason.empty() ? "" : " — ",
              r.fallback_reason.c_str());
  if (r.shards > 0) {
    std::printf("sharded: %d shards via %s executor, exchange every %d "
                "batches (%d rounds%s)\n",
                r.shards, r.executor.c_str(), r.exchange_every,
                r.exchange_rounds,
                r.exchange_every > 0 && !r.exchange_strict ? ", non-strict"
                                                           : "");
    for (const tune::ShardRecovery& sr : r.shard_recovery) {
      if (sr.retries == 0 && !sr.degraded && sr.exchange_skips == 0) continue;
      std::printf("  shard %d: %d retr%s%s%s%s%s%s\n", sr.shard, sr.retries,
                  sr.retries == 1 ? "y" : "ies",
                  sr.recovered ? ", recovered" : "",
                  sr.degraded ? ", degraded to in-process fallback" : "",
                  sr.resumed_batches > 0
                      ? (", resumed " + std::to_string(sr.resumed_batches) +
                         " batches from checkpoint")
                            .c_str()
                      : "",
                  sr.exchange_skips > 0
                      ? (", skipped " + std::to_string(sr.exchange_skips) +
                         " exchange round(s)")
                            .c_str()
                      : "",
                  sr.last_failure.empty()
                      ? ""
                      : (" — last fault: " + sr.last_failure).c_str());
    }
  }

  critter::util::Table t("per-configuration results");
  t.header({"config", "params", "true(s)", "predicted(s)", "err(%)",
            "skipped"});
  for (const auto& c : r.per_config) {
    if (!c.evaluated) continue;  // skipped by the search strategy
    t.row({std::to_string(c.config.index), c.config.label(),
           critter::util::Table::num(c.true_time, 5),
           critter::util::Table::num(c.pred_time, 5),
           critter::util::Table::num(100.0 * c.err, 2),
           std::to_string(c.skipped)});
  }
  t.print();

  std::printf("\nsearch: %.4fs with selective execution vs %.4fs "
              "full (%.2fx speedup); %d/%zu configurations evaluated\n",
              r.tuning_time, r.full_time, r.full_time / r.tuning_time,
              r.evaluated_configs, r.per_config.size());
  if (r.phases.total() > 0.0)
    std::printf("phase breakdown: ask %.4fs, evaluate %.4fs, tell %.4fs, "
                "exchange %.4fs, checkpoint %.4fs (wall, summed over "
                "shards)\n",
                r.phases.ask, r.phases.evaluate, r.phases.tell,
                r.phases.exchange, r.phases.checkpoint);
  std::printf("selected config %d (%s); optimum is %d — selection quality "
              "%.1f%%\n",
              r.best_predicted(),
              r.per_config[r.best_predicted()].config.label().c_str(),
              r.best_true(), 100.0 * r.selection_quality());

  const std::string save_stats = opt.get("save-stats", "");
  if (!save_stats.empty()) {
    if (r.stats.empty())
      std::printf("not saving %s: the sweep kept no shared statistics "
                  "(isolated-parallel mode)\n", save_stats.c_str());
    else {
      r.stats.save_file(save_stats);
      std::printf("saved statistics snapshot to %s (reusable via --prior or "
                  "as a warm start)\n", save_stats.c_str());
    }
  }
  return 0;
}
