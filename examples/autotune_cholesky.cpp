// Autotune Capital's 3D Cholesky block size and base-case strategy, the
// paper's first case study, with a policy of your choice:
//
//   ./autotune_cholesky [--policy=online] [--tolerance=0.125] [--samples=2]
//                       [--workers=4] [--batch=4]
//
// Prints the per-configuration predictions, the exhaustive-search cost with
// and without selective execution, the selected configuration, and the
// effective sweep mode (serial / parallel-isolated / parallel-batch-shared
// — never a silent fallback).
#include <cmath>
#include <cstdio>
#include <string>

#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace tune = critter::tune;

namespace {
critter::Policy parse_policy(const std::string& s) {
  if (s == "conditional") return critter::Policy::ConditionalExecution;
  if (s == "eager") return critter::Policy::EagerPropagation;
  if (s == "local") return critter::Policy::LocalPropagation;
  if (s == "online") return critter::Policy::OnlinePropagation;
  if (s == "apriori") return critter::Policy::AprioriPropagation;
  std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
  std::exit(1);
}
}  // namespace

int main(int argc, char** argv) {
  critter::util::Options opt(argc, argv);
  tune::TuneOptions topt;
  topt.policy = parse_policy(opt.get("policy", "online"));
  topt.tolerance = opt.get_double("tolerance", 0.125);
  topt.samples = static_cast<int>(opt.get_int("samples", 2));
  topt.workers = static_cast<int>(opt.get_int("workers", 1));
  topt.batch = static_cast<int>(opt.get_int("batch", 0));

  const tune::Study study =
      tune::capital_cholesky_study(critter::util::paper_scale());
  std::printf("autotuning %s: %d ranks, n=%d, %zu configurations, policy=%s, "
              "eps=%.4f\n",
              study.name.c_str(), study.nranks, study.n, study.configs.size(),
              critter::policy_name(topt.policy), topt.tolerance);

  const tune::TuneResult r = tune::run_study(study, topt);

  std::printf("sweep mode: %s, %d/%d workers%s%s%s\n",
              tune::sweep_mode_name(r.mode), r.effective_workers,
              r.requested_workers,
              r.batch > 0 ? (", batch " + std::to_string(r.batch)).c_str() : "",
              r.fallback_reason.empty() ? "" : " — ",
              r.fallback_reason.c_str());

  critter::util::Table t("per-configuration results");
  t.header({"config", "params", "true(s)", "predicted(s)", "err(%)",
            "skipped"});
  for (const auto& c : r.per_config)
    t.row({std::to_string(c.config.index), c.config.label(study.app),
           critter::util::Table::num(c.true_time, 5),
           critter::util::Table::num(c.pred_time, 5),
           critter::util::Table::num(100.0 * c.err, 2),
           std::to_string(c.skipped)});
  t.print();

  std::printf("\nexhaustive search: %.4fs with selective execution vs %.4fs "
              "full (%.2fx speedup)\n",
              r.tuning_time, r.full_time, r.full_time / r.tuning_time);
  std::printf("selected config %d (%s); optimum is %d — selection quality "
              "%.1f%%\n",
              r.best_predicted(),
              r.per_config[r.best_predicted()].config.label(study.app).c_str(),
              r.best_true(), 100.0 * r.selection_quality());
  return 0;
}
