// Autotune CANDMC's pipelined 2D QR over block size and processor-grid
// shape (the paper's third case study), or any other registered workload:
//
//   ./autotune_qr [--workload=candmc-qr] [--strategy=halving,eta=2]
//                 [--policy=local] [--tolerance=0.25] [--samples=1]
//                 [--workers=4] [--batch=4]
//                 [--shards=2] [--exchange-every=4]
//                 [--executor=subprocess|in-process]
//                 [--max-retries=N] [--checkpoint-every=B]
//                 [--exchange-strict=0|1]
//                 [--prior=FILE] [--save-stats=FILE] [--reset=0|1]
//
// --help lists the registered workloads and strategies.  Demonstrates the
// paper's observation that CANDMC's shrinking trailing matrix creates many
// distinct kernel signatures, limiting the end-to-end speedup while kernel
// execution time itself drops sharply.  --shards/--exchange-every fan the
// sweep across shard processes; --max-retries/--checkpoint-every/
// --exchange-strict control the subprocess fleet's fault tolerance (see
// autotune_cholesky for details).
//
// --prior=FILE / --save-stats=FILE run the transfer-tuning workflow (tune
// small, save the snapshot, prior a bigger sweep — see autotune_cholesky).
// The paper's QR protocol resets statistics per configuration, so its
// snapshot keeps no kernel runtime moments to transfer (copula-transfer
// would degrade to random-subset); pass --reset=0 to sweep with persistent
// statistics when producing a prior.
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>

#include "dist/executor.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dist = critter::dist;
namespace tune = critter::tune;

int main(int argc, char** argv) {
  if (dist::is_shard_worker(argc, argv))
    return dist::shard_worker_main(argc, argv);
  critter::util::Options opt(argc, argv);
  if (opt.has("help")) {
    std::printf("usage: autotune_qr [--workload=NAME] "
                "[--strategy=NAME[,key=val...]]\n"
                "                   [--policy=local] [--tolerance=X] "
                "[--samples=N]\n"
                "                   [--workers=N] [--batch=N]\n"
                "                   [--shards=N] [--exchange-every=B] "
                "[--executor=subprocess|in-process]\n"
                "                   [--max-retries=N] [--checkpoint-every=B] "
                "[--exchange-strict=0|1]\n"
                "                   [--prior=FILE] [--save-stats=FILE] "
                "[--reset=0|1]\n\n%s",
                tune::registry_help().c_str());
    return 0;
  }
  tune::TuneOptions topt;
  const std::string pol = opt.get("policy", "local");
  topt.policy = pol == "conditional" ? critter::Policy::ConditionalExecution
                : pol == "online"    ? critter::Policy::OnlinePropagation
                : pol == "apriori"   ? critter::Policy::AprioriPropagation
                                     : critter::Policy::LocalPropagation;
  topt.tolerance = opt.get_double("tolerance", 0.25);
  topt.samples = static_cast<int>(opt.get_int("samples", 1));
  topt.workers = static_cast<int>(opt.get_int("workers", 1));
  topt.batch = static_cast<int>(opt.get_int("batch", 0));
  // Paper protocol for CANDMC resets statistics per configuration;
  // --reset=0 keeps them persistent (required to --save-stats a prior).
  topt.reset_per_config = opt.get_int("reset", 1) != 0;
  std::tie(topt.strategy, topt.strategy_options) =
      tune::parse_strategy_spec(opt.get("strategy", "exhaustive"));
  topt.prior_file = opt.get("prior", "");

  const tune::Study study = tune::workload_study(
      opt.get("workload", "candmc-qr"), critter::util::paper_scale());
  std::printf("autotuning %s: %d ranks, %d x %d, %zu configurations, "
              "strategy=%s\n",
              study.name.c_str(), study.nranks, study.m, study.n,
              study.configs.size(), topt.strategy.c_str());

  const int shards = static_cast<int>(opt.get_int("shards", 1));
  dist::ExchangePolicy exchange;
  exchange.every = static_cast<int>(opt.get_int("exchange-every", 0));
  exchange.strict = opt.get_int("exchange-strict", 1) != 0;
  dist::FaultPolicy fault;
  fault.max_retries = static_cast<int>(opt.get_int("max-retries", 0));
  fault.checkpoint_every =
      static_cast<int>(opt.get_int("checkpoint-every", 0));
  const tune::TuneResult r = dist::run_sharded_named(
      study, topt, shards,
      opt.get("executor", shards > 1 ? "subprocess" : "in-process"), exchange,
      fault);

  std::printf("sweep mode: %s, %d/%d workers%s%s\n",
              tune::sweep_mode_name(r.mode), r.effective_workers,
              r.requested_workers, r.fallback_reason.empty() ? "" : " — ",
              r.fallback_reason.c_str());
  if (r.shards > 0) {
    std::printf("sharded: %d shards via %s executor, exchange every %d "
                "batches (%d rounds%s)\n",
                r.shards, r.executor.c_str(), r.exchange_every,
                r.exchange_rounds,
                r.exchange_every > 0 && !r.exchange_strict ? ", non-strict"
                                                           : "");
    for (const tune::ShardRecovery& sr : r.shard_recovery) {
      if (sr.retries == 0 && !sr.degraded && sr.exchange_skips == 0) continue;
      std::printf("  shard %d: %d retr%s%s%s%s%s%s\n", sr.shard, sr.retries,
                  sr.retries == 1 ? "y" : "ies",
                  sr.recovered ? ", recovered" : "",
                  sr.degraded ? ", degraded to in-process fallback" : "",
                  sr.resumed_batches > 0
                      ? (", resumed " + std::to_string(sr.resumed_batches) +
                         " batches from checkpoint")
                            .c_str()
                      : "",
                  sr.exchange_skips > 0
                      ? (", skipped " + std::to_string(sr.exchange_skips) +
                         " exchange round(s)")
                            .c_str()
                      : "",
                  sr.last_failure.empty()
                      ? ""
                      : (" — last fault: " + sr.last_failure).c_str());
    }
  }

  critter::util::Table t("per-configuration results");
  t.header({"config", "params", "true(s)", "predicted(s)", "err(%)",
            "sel-kernel-time(s)"});
  for (const auto& c : r.per_config) {
    if (!c.evaluated) continue;  // skipped by the search strategy
    t.row({std::to_string(c.config.index), c.config.label(),
           critter::util::Table::num(c.true_time, 5),
           critter::util::Table::num(c.pred_time, 5),
           critter::util::Table::num(100.0 * c.err, 2),
           critter::util::Table::num(c.sel_kernel_time, 5)});
  }
  t.print();

  std::printf("\ntuning %.4fs vs full %.4fs (%.2fx); kernel-time reduction "
              "%.2fx; best=%d true-best=%d\n",
              r.tuning_time, r.full_time, r.full_time / r.tuning_time,
              r.full_kernel_time / std::max(r.kernel_time, 1e-300),
              r.best_predicted(), r.best_true());
  if (r.phases.total() > 0.0)
    std::printf("phase breakdown: ask %.4fs, evaluate %.4fs, tell %.4fs, "
                "exchange %.4fs, checkpoint %.4fs (wall, summed over "
                "shards)\n",
                r.phases.ask, r.phases.evaluate, r.phases.tell,
                r.phases.exchange, r.phases.checkpoint);

  const std::string save_stats = opt.get("save-stats", "");
  if (!save_stats.empty()) {
    if (r.stats.empty())
      std::printf("not saving %s: the sweep kept no shared statistics "
                  "(reset/isolated mode — pass --reset=0)\n",
                  save_stats.c_str());
    else {
      r.stats.save_file(save_stats);
      std::printf("saved statistics snapshot to %s (reusable via --prior or "
                  "as a warm start)\n", save_stats.c_str());
    }
  }
  return 0;
}
