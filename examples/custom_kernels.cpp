// User-defined kernel interception (paper §IV-A / §V-D: Capital's
// block-to-cyclic redistribution kernels are intercepted this way):
//
//   ./custom_kernels [--ranks=8] [--iters=200]
//
// A library developer wraps an arbitrary code region in
// critter::user_kernel(name, dims, flops, work); critter then samples it,
// builds its confidence interval, and eventually skips it like any BLAS or
// MPI kernel.  This example instruments a data-layout transformation and a
// sparse-ish traversal and shows their statistics converging.
#include <cstdio>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "core/profiler.hpp"
#include "sim/api.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sim = critter::sim;

int main(int argc, char** argv) {
  critter::util::Options opt(argc, argv);
  const int ranks = static_cast<int>(opt.get_int("ranks", 8));
  const int iters = static_cast<int>(opt.get_int("iters", 200));

  critter::Config cfg;
  cfg.policy = critter::Policy::LocalPropagation;
  cfg.tolerance = 0.25;
  critter::Store store(ranks, cfg);

  constexpr std::uint64_t kRedistribute = 0xB10C2C;
  constexpr std::uint64_t kTraverse = 0x7247;

  sim::Engine engine(ranks, sim::Machine::knl_like());
  engine.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    for (int it = 0; it < iters; ++it) {
      // a block-to-cyclic style redistribution: bandwidth-bound
      critter::user_kernel(kRedistribute, 512, 512, /*flops=*/512.0 * 512.0,
                           /*real_work=*/nullptr);
      // an irregular traversal with a different cost scale
      critter::user_kernel(kTraverse, 4096, 1, /*flops=*/3.0 * 4096.0,
                           nullptr);
      critter::mpi::barrier(sim::world());
    }
    critter::Report r = critter::stop();
    if (ctx.rank == 0) {
      critter::util::Table t("custom kernel profile (rank 0)");
      t.header({"kernel", "samples", "mean(us)", "rel-CI", "skipped-invocations"});
      for (const auto& [key, ks] : store.rank(0).table.K) {
        if (key.cls != critter::core::KernelClass::User) continue;
        t.row({key.to_string(), std::to_string(ks.n),
               critter::util::Table::num(ks.mean * 1e6, 3),
               critter::util::Table::num(
                   ks.relative_ci(1.96, 1, cfg.min_samples), 4),
               std::to_string(ks.total_invocations - ks.total_executions)});
      }
      t.print();
      std::printf("\nexecuted %lld, skipped %lld of %d iterations x 2 kernels"
                  " x %d ranks\n",
                  static_cast<long long>(r.executed),
                  static_cast<long long>(r.skipped), iters, ranks);
    }
  });
  return 0;
}
