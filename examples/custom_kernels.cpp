// Registering and tuning a custom workload end-to-end (paper §IV-A / §V-D:
// Capital's block-to-cyclic redistribution kernels are intercepted as user
// kernels this way):
//
//   ./custom_kernels [--ranks=8] [--iters=24] [--samples=2]
//
// A library developer wraps arbitrary code regions in
// critter::user_kernel(name, dims, flops, work), describes the tunable
// parameters as a ParamSpace, and registers the pair as a Workload — all
// from user code, without touching src/tune/.  The tuner then samples the
// kernels, builds their confidence intervals, and selectively skips them
// like any BLAS or MPI kernel.  This example tunes the block size of a
// redistribution pipeline through the ask/tell Tuner session and shows the
// session state round-tripping through export_state().
#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "sim/api.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sim = critter::sim;
namespace tune = critter::tune;

namespace {

constexpr std::uint64_t kRedistribute = 0xB10C2C;
constexpr std::uint64_t kTraverse = 0x7247;

/// A block-to-cyclic style redistribution followed by an irregular
/// traversal, both intercepted as user kernels.  The tunable "b" trades
/// per-block launch overhead (small blocks: many kernels) against load
/// imbalance modeled as superlinear per-block cost (large blocks).
class RedistributeWorkload final : public tune::Workload {
 public:
  explicit RedistributeWorkload(int ranks, int iters)
      : ranks_(ranks), iters_(iters) {}

  std::string name() const override { return "block-redistribute"; }
  std::string description() const override {
    return "user-kernel redistribution pipeline: block size";
  }

  void run(const tune::Study& study,
           const tune::Configuration& cfg) const override {
    const std::int64_t b = cfg.at("b");
    const std::int64_t blocks = study.n / b;
    for (int it = 0; it < iters_; ++it) {
      for (std::int64_t k = 0; k < blocks; ++k)
        critter::user_kernel(kRedistribute, b, b,
                             /*flops=*/1.1 * static_cast<double>(b) * b, nullptr);
      critter::user_kernel(kTraverse, study.n, 1,
                           /*flops=*/3.0 * static_cast<double>(study.n), nullptr);
      critter::mpi::barrier(sim::world());
    }
  }

 protected:
  tune::Study define(bool /*paper_scale*/) const override {
    tune::Study s;
    s.name = "user-kernel redistribution";
    s.nranks = ranks_;
    s.n = 4096;
    s.m = s.n;
    s.gamma = 4.0e-8;
    s.space = tune::ParamSpace::cartesian(
        {{"b", {64, 128, 256, 512, 1024, 2048}}});
    return s;
  }

 private:
  int ranks_;
  int iters_;
};

}  // namespace

int main(int argc, char** argv) {
  critter::util::Options opt(argc, argv);
  const int ranks = static_cast<int>(opt.get_int("ranks", 8));
  const int iters = static_cast<int>(opt.get_int("iters", 24));

  // Registration is plain user code; the workload is now addressable by
  // name next to the paper's case studies (try --help on the autotune
  // examples to see it listed).
  tune::register_workload(
      std::make_unique<RedistributeWorkload>(ranks, iters));
  const tune::Study study = tune::workload_study("block-redistribute", false);

  tune::TuneOptions topt;
  topt.policy = critter::Policy::LocalPropagation;
  topt.tolerance = 0.25;
  topt.samples = static_cast<int>(opt.get_int("samples", 2));

  // The incremental ask/tell session behind run_study, driven explicitly:
  // ask() claims a batch, evaluate() runs it inside the simulator, tell()
  // feeds the outcomes back to the search strategy.
  tune::Tuner session(study, topt);
  critter::util::Table t("ask/tell tuning of " + study.name);
  t.header({"config", "params", "true(s)", "predicted(s)", "err(%)",
            "skipped"});
  while (!session.done()) {
    const std::vector<int> batch = session.ask();
    if (batch.empty()) break;
    const std::vector<tune::ConfigOutcome> outcomes = session.evaluate(batch);
    session.tell(outcomes);
    for (const tune::ConfigOutcome& oc : outcomes)
      t.row({std::to_string(oc.config.index), oc.config.label(),
             critter::util::Table::num(oc.true_time, 5),
             critter::util::Table::num(oc.pred_time, 5),
             critter::util::Table::num(100.0 * oc.err, 2),
             std::to_string(oc.skipped)});
  }
  t.print();

  const tune::TuneResult r = session.result();
  std::printf("\nselected b=%lld (config %d); search %.4fs selective vs "
              "%.4fs full (%.2fx)\n",
              static_cast<long long>(
                  r.per_config[r.best_predicted()].config.at("b")),
              r.best_predicted(), r.tuning_time, r.full_time,
              r.full_time / std::max(r.tuning_time, 1e-300));

  // The session's statistics are a first-class value: serialize them and a
  // later process can warm-start from exactly this state.
  std::stringstream buf;
  session.export_state().save(buf, critter::core::StatSnapshot::Format::Binary);
  std::printf("exported session statistics: %zu bytes (binary snapshot)\n",
              buf.str().size());
  return 0;
}
