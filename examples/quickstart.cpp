// Quickstart: profile a toy bulk-synchronous MPI program with critter.
//
//   ./quickstart [--ranks=16] [--iters=50]
//
// The program runs a simulated 1D stencil-style computation (local gemm
// work + halo exchange + residual allreduce) under the critter profiler,
// first fully executed, then with selective execution at a loose tolerance,
// and prints both reports: the second run skips steady kernels and predicts
// the first run's execution time.
#include <cstdio>

#include "core/kernels.hpp"
#include "core/mpi.hpp"
#include "core/profiler.hpp"
#include "sim/api.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sim = critter::sim;

namespace {

void stencil_program(int iters) {
  const int me = sim::world_rank();
  const int p = sim::world_size();
  const int nb = 96;
  for (int it = 0; it < iters; ++it) {
    // local work: one blocked update
    critter::blas::gemm(critter::la::Trans::N, critter::la::Trans::N, nb, nb,
                        nb, 1.0, nullptr, nb, nullptr, nb, 0.0, nullptr, nb);
    // halo exchange with ring neighbours
    const int right = (me + 1) % p, left = (me + p - 1) % p;
    critter::mpi::Request rq =
        critter::mpi::isend(nullptr, nb * 8, right, 0, sim::world());
    critter::mpi::recv(nullptr, nb * 8, left, 0, sim::world());
    critter::mpi::wait(rq);
    // global residual
    critter::mpi::allreduce(nullptr, nullptr, 8, sim::reduce_sum_double(),
                            sim::world());
  }
}

critter::Report run(critter::Store& store, int ranks, int iters) {
  sim::Engine engine(ranks, sim::Machine::knl_like());
  critter::Report rep;
  engine.run([&](sim::RankCtx& ctx) {
    critter::start(store);
    stencil_program(iters);
    critter::Report r = critter::stop();
    if (ctx.rank == 0) rep = r;
  });
  return rep;
}

void print_report(const char* title, const critter::Report& r) {
  critter::util::Table t(title);
  t.header({"metric", "value"});
  t.row({"wall time (s)", critter::util::Table::num(r.wall_time, 6)});
  t.row({"critical-path exec time (s)", critter::util::Table::num(r.critical.exec_time, 6)});
  t.row({"critical-path comp time (s)", critter::util::Table::num(r.critical.comp_time, 6)});
  t.row({"critical-path comm time (s)", critter::util::Table::num(r.critical.comm_time, 6)});
  t.row({"BSP supersteps", critter::util::Table::num(r.critical.sync_cost, 0)});
  t.row({"BSP words (critical path)", critter::util::Table::sci(r.critical.comm_cost)});
  t.row({"BSP flops (critical path)", critter::util::Table::sci(r.critical.comp_cost)});
  t.row({"kernels executed", std::to_string(r.executed)});
  t.row({"kernels skipped", std::to_string(r.skipped)});
  t.row({"profiling overhead (s)", critter::util::Table::num(r.overhead_time, 6)});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  critter::util::Options opt(argc, argv);
  const int ranks = static_cast<int>(opt.get_int("ranks", 16));
  const int iters = static_cast<int>(opt.get_int("iters", 50));

  // 1. full execution: every kernel runs, the profile is exact.
  critter::Config full_cfg;
  full_cfg.selective = false;
  critter::Store full_store(ranks, full_cfg);
  critter::Report full = run(full_store, ranks, iters);
  print_report("Full execution", full);

  // 2. selective execution: after a few samples each kernel's confidence
  //    interval tightens below the tolerance and it is skipped; the
  //    critical-path model keeps predicting the full execution time.
  critter::Config sel_cfg;
  sel_cfg.policy = critter::Policy::OnlinePropagation;
  sel_cfg.tolerance = 0.25;
  critter::Store sel_store(ranks, sel_cfg);
  critter::Report sel = run(sel_store, ranks, iters);
  print_report("Selective execution (online propagation, eps=0.25)", sel);

  const double err = std::abs(sel.critical.exec_time - full.critical.exec_time) /
                     full.critical.exec_time;
  std::printf("\nprediction error: %.2f%%   tuning speedup: %.2fx\n",
              100.0 * err, full.wall_time / sel.wall_time);
  return 0;
}
